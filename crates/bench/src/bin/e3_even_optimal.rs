//! E3 — Theorem 4.1: the even-capacity solver is exactly optimal.
//!
//! For every instance with even `c_v`, the schedule must have exactly
//! `Δ' = max ⌈d_v/c_v⌉` rounds. The harness sweeps sizes and densities,
//! validates every schedule, and reports runtime scaling.

use dmig_bench::{table::Table, timed};
use dmig_core::{bounds, MigrationProblem};
use dmig_workloads::{capacities, random};

fn main() {
    println!("E3: even-capacity optimality (Theorem 4.1)\n");
    let mut t = Table::new(&["n", "m", "Δ'", "Γ'", "rounds", "optimal", "ms"]);
    let mut all_optimal = true;
    for &(n, m) in &[
        (8usize, 40usize),
        (16, 120),
        (32, 320),
        (64, 900),
        (128, 2500),
        (256, 6000),
        (256, 20000),
    ] {
        for seed in 0..3u64 {
            let g = random::uniform_multigraph(n, m, seed * 1000 + n as u64);
            let caps = capacities::random_even(n, 4, seed * 77 + 5);
            let p = MigrationProblem::new(g, caps).expect("valid instance");
            let lb1 = bounds::lb1(&p);
            let lb2 = bounds::lb2(&p);
            let (schedule, ms) = timed(|| dmig_core::even::solve_even(&p).expect("even caps"));
            schedule.validate(&p).expect("feasible");
            let optimal = schedule.makespan() == lb1;
            all_optimal &= optimal;
            t.row_owned(vec![
                n.to_string(),
                m.to_string(),
                lb1.to_string(),
                lb2.to_string(),
                schedule.makespan().to_string(),
                if optimal { "yes" } else { "NO" }.to_string(),
                format!("{ms:.1}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "all instances scheduled in exactly Δ' rounds: {}",
        if all_optimal { "yes" } else { "NO" }
    );
    assert!(all_optimal, "Theorem 4.1 reproduction failed");
}
