//! E7 — the slow-node bottleneck (paper §I): "assuming that each node
//! participates in only one transfer will significantly degrade the finish
//! time … as a slow node can be a bottleneck."
//!
//! Setup: a hot-spot drain from disk 0 across `n-1` receivers. Disk 0 is
//! fast (`c = 8`); one receiver is slow (`c = 1`), the rest medium
//! (`c = 4`). A capacity-aware scheduler routes around the slow disk's
//! constraint; the homogeneous scheduler forces everyone to the slow
//! disk's one-at-a-time pace.

use dmig_bench::table::Table;
use dmig_core::solver::{GeneralSolver, GreedySolver, HomogeneousSolver, Solver};
use dmig_core::{bounds, Capacities, MigrationProblem};
use dmig_sim::{engine::simulate_rounds, Cluster};
use dmig_workloads::reconfigure;

fn main() {
    println!("E7: slow-node bottleneck — hot-spot drain, one c=1 receiver\n");
    let mut t = Table::new(&[
        "receivers",
        "items",
        "LB",
        "general",
        "greedy",
        "homog",
        "gen time",
        "hom time",
    ]);
    for &(receivers, items) in &[(4usize, 64usize), (8, 128), (16, 256), (32, 512)] {
        let n = receivers + 1;
        let g = reconfigure::hot_spot_drain(n, 0, items, 7);
        let mut caps = vec![4u32; n];
        caps[0] = 8; // the drained hub is fast
        caps[1] = 1; // one slow receiver
        let p = MigrationProblem::new(g, Capacities::from_vec(caps)).expect("valid");
        let lb = bounds::lower_bound(&p);

        let general = GeneralSolver::default().solve(&p).expect("infallible");
        let greedy = GreedySolver.solve(&p).expect("infallible");
        let homog = HomogeneousSolver.solve(&p).expect("infallible");
        for s in [&general, &greedy, &homog] {
            s.validate(&p).expect("feasible");
        }
        // Bandwidth mirrors the capacity story: the slow disk is slow.
        let mut bw = vec![1.0f64; n];
        bw[0] = 2.0;
        bw[1] = 0.25;
        let cluster = Cluster::from_bandwidths(bw);
        let gen_time = simulate_rounds(&p, &general, &cluster)
            .expect("valid")
            .total_time;
        let hom_time = simulate_rounds(&p, &homog, &cluster)
            .expect("valid")
            .total_time;

        t.row_owned(vec![
            receivers.to_string(),
            items.to_string(),
            lb.to_string(),
            general.makespan().to_string(),
            greedy.makespan().to_string(),
            homog.makespan().to_string(),
            format!("{gen_time:.0}"),
            format!("{hom_time:.0}"),
        ]);
        assert!(general.makespan() <= homog.makespan());
    }
    println!("{}", t.render());
    println!(
        "expected shape: general ≈ LB (hub capacity governs); homogeneous ≥ items/1 at the hub"
    );
}
