//! E5 — head-to-head: general vs Saia-1.5 vs homogeneous vs greedy (and
//! the exact solvers where applicable) across the motivating workloads.
//!
//! Expected shape (paper §I–II): the general solver tracks the lower
//! bound; Saia trails within 1.5×; homogeneous pays up to a `max c_v`
//! factor; greedy sits in between.

use dmig_bench::{corpus::faceoff_suite, table::Table};
use dmig_core::{bounds, solver::all_solvers};

fn main() {
    println!("E5: solver face-off across workloads (rounds; '-' = not applicable)\n");
    let solvers = all_solvers();
    let mut header: Vec<&str> = vec!["case", "LB"];
    let names: Vec<&'static str> = solvers.iter().map(|s| s.name()).collect();
    header.extend(names.iter());
    let mut t = Table::new(&header);

    let mut general_total = 0usize;
    let mut lb_total = 0usize;
    for case in faceoff_suite(0xFACE) {
        let lb = bounds::lower_bound(&case.problem);
        lb_total += lb;
        let mut cells = vec![case.label.clone(), lb.to_string()];
        for solver in &solvers {
            match solver.solve(&case.problem) {
                Ok(s) => {
                    s.validate(&case.problem).expect("feasible");
                    if solver.name() == "general" {
                        general_total += s.makespan();
                    }
                    cells.push(s.makespan().to_string());
                }
                Err(_) => cells.push("-".to_string()),
            }
        }
        t.row_owned(cells);
    }
    println!("{}", t.render());
    println!(
        "aggregate general/LB ratio: {:.4}",
        general_total as f64 / lb_total as f64
    );
    assert!(
        general_total as f64 <= 1.1 * lb_total as f64,
        "general solver should aggregate within 10% of the lower bound"
    );
}
