//! E2 — the paper's Fig. 2 gap: heterogeneous vs homogeneous scheduling
//! on `K3` with `M` parallel items and `c_v = 2`.
//!
//! Paper claim (§I, Fig. 2): one-transfer-at-a-time scheduling takes `3M`
//! time units; with two concurrent transfers per disk the migration
//! finishes in `2M` time units (`M` rounds, each at half bandwidth) — a
//! 1.5× wall-clock win and a 3× round-count win.

use dmig_bench::{corpus::fig2, table::Table, timed};
use dmig_core::solver::{EvenOptimalSolver, HomogeneousSolver, SaiaSolver, Solver};
use dmig_sim::{engine::simulate_rounds, Cluster};

fn main() {
    println!("E2: Fig. 2 gap — K3 with M parallel items, c_v = 2, unit bandwidth\n");
    let mut t = Table::new(&[
        "M",
        "het rounds",
        "hom rounds",
        "saia rounds",
        "het time",
        "hom time",
        "time ratio",
        "het ms",
    ]);
    for m in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let p = fig2(m, 2);
        let cluster = Cluster::uniform(3, 1.0);
        let (het, het_ms) = timed(|| EvenOptimalSolver.solve(&p).expect("even caps"));
        let hom = HomogeneousSolver.solve(&p).expect("infallible");
        let saia = SaiaSolver.solve(&p).expect("infallible");
        for s in [&het, &hom, &saia] {
            s.validate(&p).expect("schedules must be feasible");
        }
        let het_time = simulate_rounds(&p, &het, &cluster)
            .expect("valid")
            .total_time;
        let hom_time = simulate_rounds(&p, &hom, &cluster)
            .expect("valid")
            .total_time;
        t.row_owned(vec![
            m.to_string(),
            het.makespan().to_string(),
            hom.makespan().to_string(),
            saia.makespan().to_string(),
            format!("{het_time:.0}"),
            format!("{hom_time:.0}"),
            format!("{:.3}", hom_time / het_time),
            format!("{het_ms:.2}"),
        ]);
        assert_eq!(het.makespan(), m, "heterogeneous optimum is M rounds");
        assert!(hom.makespan() >= 3 * m, "homogeneous needs 3M rounds");
        assert!(
            (het_time - 2.0 * m as f64).abs() < 1e-9,
            "paper: 2M time units"
        );
        assert!(
            (hom_time - 3.0 * m as f64).abs() < 1e-9,
            "paper: 3M time units"
        );
    }
    println!("{}", t.render());
    println!("expected shape: het rounds = M, hom rounds = 3M, time ratio = 1.5");
}
