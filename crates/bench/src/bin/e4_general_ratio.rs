//! E4 — Theorem 5.1 / Corollary 5.3: the general solver's excess over the
//! lower bound stays `O(√OPT)`, i.e. the approximation factor is
//! `1 + o(1)` as instances grow.
//!
//! OPT is NP-hard, so (as the paper does) excess is measured against
//! `max(Δ', Γ')`; that only *overstates* the true ratio. For each scale
//! bucket the harness reports the mean/max excess, the mean ratio, and the
//! theory envelope `2⌈√LB⌉ + 2`.

use dmig_bench::{table::Table, timed};
use dmig_core::{bounds, general::solve_general, MigrationProblem};
use dmig_workloads::{capacities, random};

fn main() {
    println!("E4: general solver vs lower bound (1 + o(1) trend)\n");
    let mut t = Table::new(&[
        "scale",
        "cases",
        "mean LB",
        "mean excess",
        "max excess",
        "mean ratio",
        "√LB envelope",
        "mean ms",
    ]);
    // Scale buckets: (n, m, target LB magnitude grows left to right).
    let buckets: &[(usize, usize, &str)] = &[
        (10, 60, "tiny"),
        (16, 200, "small"),
        (24, 600, "medium"),
        (32, 1600, "large"),
        (48, 4000, "xlarge"),
        (64, 9000, "xxlarge"),
    ];
    let mut trend: Vec<(f64, f64)> = Vec::new(); // (mean LB, mean ratio)
    for &(n, m, label) in buckets {
        let mut excesses = Vec::new();
        let mut lbs = Vec::new();
        let mut ratios = Vec::new();
        let mut times = Vec::new();
        for seed in 0..8u64 {
            let g = random::uniform_multigraph(n, m, seed * 31 + n as u64);
            let caps = capacities::mixed_parity(n, 1, 5, seed * 13 + 7);
            let p = MigrationProblem::new(g, caps).expect("valid instance");
            let lb = bounds::lower_bound(&p);
            let (report, ms) = timed(|| solve_general(&p));
            report.schedule.validate(&p).expect("feasible");
            let rounds = report.schedule.makespan();
            assert!(rounds >= lb);
            excesses.push((rounds - lb) as f64);
            lbs.push(lb as f64);
            ratios.push(rounds as f64 / lb as f64);
            times.push(ms);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mean_lb = mean(&lbs);
        let mean_ratio = mean(&ratios);
        let envelope = 2.0 * mean_lb.sqrt().ceil() + 2.0;
        t.row_owned(vec![
            label.to_string(),
            excesses.len().to_string(),
            format!("{mean_lb:.1}"),
            format!("{:.2}", mean(&excesses)),
            format!("{:.0}", excesses.iter().fold(0.0f64, |a, &b| a.max(b))),
            format!("{mean_ratio:.4}"),
            format!("{envelope:.0}"),
            format!("{:.1}", mean(&times)),
        ]);
        assert!(
            excesses.iter().all(|&e| e <= envelope),
            "excess beyond the O(√OPT) envelope at scale {label}"
        );
        trend.push((mean_lb, mean_ratio));
    }
    println!("{}", t.render());
    // The 1+o(1) claim: ratios should approach 1 as LB grows.
    let first = trend.first().expect("non-empty").1;
    let last = trend.last().expect("non-empty").1;
    println!("ratio trend: {first:.4} (smallest scale) → {last:.4} (largest scale)");
    assert!(
        last <= first + 1e-9,
        "approximation ratio should not grow with scale"
    );
    assert!(
        last < 1.02,
        "large instances should be within 2% of the lower bound"
    );
}
