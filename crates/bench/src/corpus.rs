//! Named instance families shared by harnesses and benches.

use dmig_core::{Capacities, MigrationProblem};
use dmig_workloads::{capacities, disk_ops, random, reconfigure};

/// A labeled instance for experiment tables.
#[derive(Clone, Debug)]
pub struct Case {
    /// Human-readable label (appears in tables).
    pub label: String,
    /// The instance.
    pub problem: MigrationProblem,
}

impl Case {
    fn new(label: impl Into<String>, problem: MigrationProblem) -> Self {
        Case {
            label: label.into(),
            problem,
        }
    }
}

/// The paper's Fig. 2 instance: `K3` with `m` parallel items, uniform
/// capacity `c`.
///
/// # Panics
///
/// Panics only on invalid capacities (not for any `m ≥ 0`, `c ≥ 1`).
#[must_use]
pub fn fig2(m: usize, c: u32) -> MigrationProblem {
    MigrationProblem::uniform(dmig_graph::builder::complete_multigraph(3, m), c)
        .expect("K3 with uniform positive capacity is always valid")
}

/// Random instance with uniform edges and a capacity profile chosen by
/// `profile` ∈ {"even", "mixed", "ones", "tiered"}.
///
/// # Panics
///
/// Panics on an unknown profile name.
#[must_use]
pub fn random_case(n: usize, m: usize, profile: &str, seed: u64) -> Case {
    let g = random::uniform_multigraph(n, m, seed);
    let caps: Capacities = match profile {
        "even" => capacities::random_even(n, 3, seed ^ 1),
        "mixed" => capacities::mixed_parity(n, 1, 5, seed ^ 1),
        "ones" => capacities::uniform(n, 1),
        "tiered" => capacities::tiered(n, 6, 1, 0.25, seed ^ 1),
        other => panic!("unknown capacity profile `{other}`"),
    };
    Case::new(
        format!("uniform n={n} m={m} caps={profile}"),
        MigrationProblem::new(g, caps).expect("generated instances are valid"),
    )
}

/// A migration instance with exactly `components` connected components:
/// each block of `nodes_per` disks carries a spanning path (keeping the
/// block connected) plus `extra_edges_per` random internal items. All
/// capacities are even, so the §IV optimal solver applies and the instance
/// exercises the component-parallel split end to end.
///
/// # Panics
///
/// Panics if `components == 0` or `nodes_per < 2`.
#[must_use]
pub fn multi_component_even(
    components: usize,
    nodes_per: usize,
    extra_edges_per: usize,
    seed: u64,
) -> MigrationProblem {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    assert!(components > 0 && nodes_per >= 2, "need non-trivial blocks");
    let n = components * nodes_per;
    let mut g =
        dmig_graph::Multigraph::with_capacity(n, components * (nodes_per - 1 + extra_edges_per));
    let mut rng = StdRng::seed_from_u64(seed);
    for c in 0..components {
        let base = c * nodes_per;
        for i in 0..nodes_per - 1 {
            g.add_edge((base + i).into(), (base + i + 1).into());
        }
        for _ in 0..extra_edges_per {
            let u = rng.gen_range(0..nodes_per);
            let mut v = rng.gen_range(0..nodes_per);
            while v == u {
                v = rng.gen_range(0..nodes_per);
            }
            g.add_edge((base + u).into(), (base + v).into());
        }
    }
    let caps = capacities::random_even(n, 3, seed ^ 1);
    MigrationProblem::new(g, caps).expect("generated instance is valid")
}

/// A **single giant component** with odd `Δ'` — the shape real transfer
/// graphs take, where component-parallel splitting is useless and only
/// intra-component (recursion-level) parallelism can help. The odd `Δ'`
/// guarantees the quota recursion runs at least one flow solve, so the
/// greedy warm start is exercised (`warm_start_hits` must move).
///
/// Deterministic in `seed`: the seed is bumped until the generated
/// instance has odd `Δ'` (bounded search; parity is near-uniform over
/// seeds).
///
/// # Panics
///
/// Panics if `nodes < 2` or no odd-`Δ'` instance appears within the seed
/// search budget (practically impossible).
#[must_use]
pub fn giant_component_odd_delta(nodes: usize, extra_edges: usize, seed: u64) -> MigrationProblem {
    (0..64)
        .map(|bump| multi_component_even(1, nodes, extra_edges, seed.wrapping_add(bump)))
        .find(|p| p.delta_prime() % 2 == 1)
        .expect("an odd-Δ' instance appears within 64 seeds")
}

/// A connected multigraph with **every degree even**: one Hamiltonian base
/// cycle plus `edges - nodes` further edges laid down as closed random
/// walks. Even degrees mean [`dmig_graph::euler::euler_orientation`]
/// accepts it directly — this is the raw substrate of the orientation
/// benchmarks, padding-free by construction.
///
/// Deterministic in `seed`; exactly `edges` edges.
///
/// # Panics
///
/// Panics if `nodes < 3` or `edges < nodes`.
#[must_use]
pub fn giant_even_multigraph(nodes: usize, edges: usize, seed: u64) -> dmig_graph::Multigraph {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    assert!(
        nodes >= 3 && edges >= nodes,
        "need a base cycle to build on"
    );
    let mut g = dmig_graph::Multigraph::with_capacity(nodes, edges);
    for i in 0..nodes {
        g.add_edge(i.into(), ((i + 1) % nodes).into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = edges - nodes;
    while remaining > 0 {
        if remaining == 1 {
            // A self-loop adds 2 to one degree: the only parity-preserving
            // single edge.
            let v = rng.gen_range(0..nodes);
            g.add_edge(v.into(), v.into());
            break;
        }
        // A closed walk of length ≥ 2 adds 2 to every interior visit and
        // closes back on its anchor: parity stays even everywhere.
        let len = rng.gen_range(2..=remaining.min(8));
        let anchor = rng.gen_range(0..nodes);
        let mut at = anchor;
        for step in 0..len {
            let next = if step + 1 == len {
                anchor
            } else {
                rng.gen_range(0..nodes)
            };
            g.add_edge(at.into(), next.into());
            at = next;
        }
        remaining -= len;
    }
    debug_assert_eq!(g.num_edges(), edges);
    g
}

/// The orientation-benchmark instance: a single ~1e6-edge giant component
/// with even degrees and heterogeneous even capacities. This is the shape
/// where the serial pad → orient tail used to pin one core; `perf_report`'s
/// `euler_parallel` section times serial vs. chunked orientation on it.
///
/// # Panics
///
/// Panics only on generator invariant violations (a bug).
#[must_use]
pub fn giant_component_1e6(seed: u64) -> MigrationProblem {
    let nodes = 50_000;
    let g = giant_even_multigraph(nodes, 1_000_000, seed);
    let caps = capacities::random_even(nodes, 3, seed ^ 1);
    MigrationProblem::new(g, caps).expect("generated instance is valid")
}

/// A clustered giant component with heterogeneous even capacities: the
/// rack-locality shape the shard partitioner targets (dense blocks on a
/// sparse ring — see [`random::clustered_multigraph`]). Cutting it at
/// block boundaries severs only the ring links, so the cut fraction
/// stays in the low percent range.
///
/// # Panics
///
/// Panics on invalid generator parameters (see
/// [`random::clustered_multigraph`]).
#[must_use]
pub fn clustered_giant(nodes: usize, edges: usize, clusters: usize, seed: u64) -> MigrationProblem {
    let g = random::clustered_multigraph(nodes, edges, clusters, 8, seed);
    let caps = capacities::random_even(nodes, 3, seed ^ 1);
    MigrationProblem::new(g, caps).expect("generated instance is valid")
}

/// The shard-bench target: a single connected ~1e7-edge clustered giant
/// (250k disks, 64 clusters) — ~38 cells at the default cell budget, far
/// too heavy for one worker shard. The generator streams edges directly
/// into the multigraph arena, so no intermediate `Vec` of endpoint pairs
/// is ever materialized.
///
/// # Panics
///
/// Panics only on generator invariant violations (a bug).
#[must_use]
pub fn giant_component_1e7(seed: u64) -> MigrationProblem {
    clustered_giant(250_000, 10_000_000, 64, seed)
}

/// The standard head-to-head suite used by E5: one case per (workload,
/// capacity-profile) combination, deterministic in `seed`.
#[must_use]
pub fn faceoff_suite(seed: u64) -> Vec<Case> {
    let mut cases = vec![
        Case::new("fig2 K3 m=16 c=2", fig2(16, 2)),
        random_case(24, 240, "even", seed),
        random_case(24, 240, "mixed", seed + 1),
        random_case(24, 240, "tiered", seed + 2),
    ];
    cases.push(Case::new(
        "power-law n=32 m=320 mixed",
        MigrationProblem::new(
            random::power_law_multigraph(32, 320, 1.2, seed + 3),
            capacities::mixed_parity(32, 1, 5, seed + 3),
        )
        .expect("valid"),
    ));
    cases.push(Case::new(
        "rebalance n=32 items=400 mixed",
        MigrationProblem::new(
            reconfigure::load_balance_delta(32, 400, seed + 4),
            capacities::mixed_parity(32, 1, 5, seed + 4),
        )
        .expect("valid"),
    ));
    cases.push(Case::new(
        "disk-add 24+4 items=300 mixed",
        MigrationProblem::new(
            disk_ops::disk_addition(24, 4, 300, seed + 5),
            capacities::mixed_parity(28, 1, 5, seed + 5),
        )
        .expect("valid"),
    ));
    cases.push(Case::new(
        "disk-drain n=28 gone=3 items=300 mixed",
        MigrationProblem::new(
            disk_ops::disk_removal(28, 3, 300, seed + 6),
            capacities::mixed_parity(28, 1, 5, seed + 6),
        )
        .expect("valid"),
    ));
    cases.push(Case::new(
        "hot-spot n=16 items=200 one-slow",
        MigrationProblem::new(
            reconfigure::hot_spot_drain(16, 0, 200, seed + 7),
            capacities::one_slow(16, 4, 1, 1),
        )
        .expect("valid"),
    ));
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let p = fig2(3, 2);
        assert_eq!(p.num_items(), 9);
        assert_eq!(p.delta_prime(), 3);
    }

    #[test]
    fn profiles_resolve() {
        for profile in ["even", "mixed", "ones", "tiered"] {
            let c = random_case(10, 40, profile, 1);
            assert_eq!(c.problem.num_items(), 40);
            assert!(c.label.contains(profile));
        }
    }

    #[test]
    #[should_panic(expected = "unknown capacity profile")]
    fn unknown_profile_panics() {
        let _ = random_case(4, 4, "warp", 0);
    }

    #[test]
    fn multi_component_shape() {
        let p = multi_component_even(8, 50, 100, 3);
        assert_eq!(p.num_disks(), 400);
        assert!(p.capacities().all_even());
        let comps = dmig_graph::components::connected_components(p.graph());
        assert_eq!(comps.count(), 8);
        assert_eq!(
            p,
            multi_component_even(8, 50, 100, 3),
            "deterministic in seed"
        );
    }

    #[test]
    fn giant_component_is_connected_with_odd_delta() {
        let p = giant_component_odd_delta(100, 200, 0xA1);
        assert_eq!(p.num_disks(), 100);
        assert_eq!(p.delta_prime() % 2, 1);
        assert!(p.capacities().all_even());
        let comps = dmig_graph::components::connected_components(p.graph());
        assert_eq!(comps.count(), 1);
        assert_eq!(
            p,
            giant_component_odd_delta(100, 200, 0xA1),
            "deterministic in seed"
        );
    }

    #[test]
    fn giant_even_multigraph_has_even_degrees_and_exact_size() {
        for (nodes, edges, seed) in [(40, 40, 1u64), (50, 301, 2), (100, 997, 3)] {
            let g = giant_even_multigraph(nodes, edges, seed);
            assert_eq!(g.num_edges(), edges);
            assert!(g.nodes().all(|v| g.degree(v) % 2 == 0), "all degrees even");
            let comps = dmig_graph::components::connected_components(&g);
            assert_eq!(comps.count(), 1, "base cycle keeps it connected");
            assert!(dmig_graph::euler::euler_orientation(&g).is_ok());
            assert_eq!(
                g,
                giant_even_multigraph(nodes, edges, seed),
                "deterministic"
            );
        }
    }

    #[test]
    #[ignore = "1e6 edges: seconds in debug builds; run with --ignored"]
    fn giant_component_1e6_is_valid() {
        let p = giant_component_1e6(0xE6);
        assert_eq!(p.num_disks(), 50_000);
        assert_eq!(p.num_items(), 1_000_000);
        assert!(p.capacities().all_even());
        let comps = dmig_graph::components::connected_components(p.graph());
        assert_eq!(comps.count(), 1);
    }

    #[test]
    fn clustered_giant_is_connected_even_and_deterministic() {
        let p = clustered_giant(400, 4_000, 8, 0xC1);
        assert_eq!(p.num_disks(), 400);
        assert_eq!(p.num_items(), 4_000);
        assert!(p.capacities().all_even());
        let comps = dmig_graph::components::connected_components(p.graph());
        assert_eq!(comps.count(), 1);
        assert_eq!(p, clustered_giant(400, 4_000, 8, 0xC1), "deterministic");
        // Forcing a tiny cell budget keeps the cut in the ring links:
        // block interiors are dense, so the cut fraction stays small.
        let cut = dmig_graph::partition::partition_cells(p.graph(), 600);
        assert!(cut.cells.len() > 1);
        assert!(
            cut.cut_fraction() < 0.15,
            "clustered shape must cut sparsely, got {}",
            cut.cut_fraction()
        );
    }

    #[test]
    #[ignore = "1e7 edges: tens of seconds in debug builds; run with --ignored"]
    fn giant_component_1e7_is_valid() {
        let p = giant_component_1e7(0xE7);
        assert_eq!(p.num_disks(), 250_000);
        assert_eq!(p.num_items(), 10_000_000);
        assert!(p.capacities().all_even());
        let comps = dmig_graph::components::connected_components(p.graph());
        assert_eq!(comps.count(), 1);
        let cut = dmig_graph::partition::partition_cells(
            p.graph(),
            dmig_graph::partition::DEFAULT_MAX_CELL_EDGES,
        );
        assert!(cut.cells.len() >= 32, "1e7 edges split into many cells");
        assert!(cut.cut_fraction() <= 0.15, "got {}", cut.cut_fraction());
    }

    #[test]
    fn faceoff_suite_is_deterministic_and_valid() {
        let a = faceoff_suite(7);
        let b = faceoff_suite(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.problem, y.problem);
            assert!(x.problem.num_items() > 0);
        }
    }
}
