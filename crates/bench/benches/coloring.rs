//! Edge-coloring substrate benchmarks: the colorers behind Saia's
//! baseline, the homogeneous baseline, the bipartite-optimal solver, and
//! Phase 2 of the general algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmig_color::{
    bipartite::bipartite_coloring, greedy::greedy_coloring, kempe::kempe_coloring,
    misra_gries::misra_gries_coloring,
};
use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_multigraph(n: usize, m: usize, seed: u64) -> Multigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..m {
        loop {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

fn random_simple(n: usize, p: f64, seed: u64) -> Multigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u.into(), v.into());
            }
        }
    }
    g
}

fn random_bipartite(nl: usize, nr: usize, m: usize, seed: u64) -> Multigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(nl + nr);
    for _ in 0..m {
        let l = rng.gen_range(0..nl);
        let r = nl + rng.gen_range(0..nr);
        g.add_edge(l.into(), r.into());
    }
    g
}

fn colorers(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    for &(n, m) in &[(64usize, 800usize), (128, 3200)] {
        let g = random_multigraph(n, m, 3);
        group.bench_with_input(BenchmarkId::new("kempe", m), &g, |b, g| {
            b.iter(|| kempe_coloring(g));
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &g, |b, g| {
            b.iter(|| greedy_coloring(g));
        });
    }
    let simple = random_simple(96, 0.3, 4);
    group.bench_with_input(
        BenchmarkId::new("misra_gries", simple.num_edges()),
        &simple,
        |b, g| {
            b.iter(|| misra_gries_coloring(g));
        },
    );
    let bip = random_bipartite(48, 48, 2400, 5);
    group.bench_with_input(BenchmarkId::new("koenig", bip.num_edges()), &bip, |b, g| {
        b.iter(|| bipartite_coloring(g).expect("bipartite"));
    });
    group.finish();
}

criterion_group!(benches, colorers);
criterion_main!(benches);
