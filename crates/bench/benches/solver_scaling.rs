//! E6 — runtime scaling of the schedulers (paper Lemma 5.9: the general
//! algorithm is polynomial in `|E|`, `Δ`, `|V|`).
//!
//! Benchmarks every solver across instance sizes; the interesting output
//! is the growth trend, not the absolute numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmig_core::solver::{
    EvenOptimalSolver, GeneralSolver, GreedySolver, HomogeneousSolver, SaiaSolver, Solver,
};
use dmig_core::MigrationProblem;
use dmig_workloads::{capacities, random};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    for &(n, m) in &[(32usize, 400usize), (64, 1600), (128, 6400)] {
        let g = random::uniform_multigraph(n, m, 42);
        let mixed =
            MigrationProblem::new(g.clone(), capacities::mixed_parity(n, 1, 5, 7)).expect("valid");
        let even = MigrationProblem::new(g, capacities::random_even(n, 3, 7)).expect("valid");

        group.bench_with_input(BenchmarkId::new("general", m), &mixed, |b, p| {
            b.iter(|| GeneralSolver::default().solve(p).expect("infallible"));
        });
        group.bench_with_input(BenchmarkId::new("even-optimal", m), &even, |b, p| {
            b.iter(|| EvenOptimalSolver.solve(p).expect("even"));
        });
        group.bench_with_input(BenchmarkId::new("saia-1.5", m), &mixed, |b, p| {
            b.iter(|| SaiaSolver.solve(p).expect("infallible"));
        });
        group.bench_with_input(BenchmarkId::new("homogeneous", m), &mixed, |b, p| {
            b.iter(|| HomogeneousSolver.solve(p).expect("infallible"));
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &mixed, |b, p| {
            b.iter(|| GreedySolver.solve(p).expect("infallible"));
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
