//! E9 — the Fig. 3 flow machinery: degree-constrained subgraph extraction
//! (the inner loop of the even-capacity solver) and the exact `Γ'`
//! densest-subgraph computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmig_core::{bounds, MigrationProblem};
use dmig_flow::exact_degree_subgraph;
use dmig_workloads::{capacities, random};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A balanced arc set where every node has out-degree = in-degree = `d`,
/// mimicking an Euler-oriented padded transfer graph.
fn regular_arcs(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arcs = Vec::with_capacity(n * d);
    for _ in 0..d {
        // A random permutation is a 1-regular orientation; d of them stack.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (u, &v) in perm.iter().enumerate() {
            arcs.push((u, v));
        }
    }
    arcs
}

fn degree_constrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_degree_constrained");
    group.sample_size(10);
    for &(n, d) in &[(64usize, 4usize), (256, 4), (256, 16)] {
        let arcs = regular_arcs(n, d, 9);
        let quota = vec![u32::try_from(d / 2).expect("small"); n];
        group.bench_with_input(
            BenchmarkId::new("extract", format!("n{n}_d{d}")),
            &(arcs, quota),
            |b, (arcs, quota)| {
                b.iter(|| {
                    exact_degree_subgraph(n, arcs, quota, quota).expect("regular is feasible")
                });
            },
        );
    }
    group.finish();
}

fn gamma_prime(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_prime_densest");
    group.sample_size(10);
    for &(n, m) in &[(32usize, 400usize), (64, 1600), (128, 6400)] {
        let g = random::uniform_multigraph(n, m, 5);
        let p = MigrationProblem::new(g, capacities::mixed_parity(n, 1, 5, 5)).expect("valid");
        group.bench_with_input(BenchmarkId::new("lb2", m), &p, |b, p| {
            b.iter(|| bounds::lb2(p));
        });
    }
    group.finish();
}

criterion_group!(benches, degree_constrained, gamma_prime);
criterion_main!(benches);
