//! E2 (timing side) — planning cost on the paper's Fig. 2 family:
//! `K3` with `M` parallel items, `c_v = 2`, for growing `M`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmig_bench::corpus::fig2;
use dmig_core::solver::{EvenOptimalSolver, HomogeneousSolver, Solver};

fn fig2_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for &m in &[16usize, 64, 256] {
        let p = fig2(m, 2);
        group.bench_with_input(BenchmarkId::new("even-optimal", m), &p, |b, p| {
            b.iter(|| EvenOptimalSolver.solve(p).expect("even"));
        });
        group.bench_with_input(BenchmarkId::new("homogeneous", m), &p, |b, p| {
            b.iter(|| HomogeneousSolver.solve(p).expect("infallible"));
        });
    }
    group.finish();
}

criterion_group!(benches, fig2_bench);
criterion_main!(benches);
