//! Perf-PR benchmarks: the flat-kernel even solver against the frozen seed
//! kernels, and component-parallel solving against whole-graph solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmig_bench::corpus::multi_component_even;
use dmig_bench::seed_baseline::solve_even_seed;
use dmig_core::even::solve_even;
use dmig_core::parallel::{default_threads, solve_split};
use dmig_core::MigrationProblem;
use dmig_workloads::{capacities, random};

fn even_instance(n: usize, seed: u64) -> MigrationProblem {
    let g = random::uniform_multigraph(n, 4 * n, seed);
    let caps = capacities::random_even(n, 3, seed ^ 1);
    MigrationProblem::new(g, caps).expect("generated instance is valid")
}

fn kernels_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_even_kernels");
    group.sample_size(10);
    for &n in &[100usize, 1_000] {
        let p = even_instance(n, 0xD16);
        group.bench_with_input(BenchmarkId::new("seed", n), &p, |b, p| {
            b.iter(|| solve_even_seed(p).expect("solves").makespan());
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &p, |b, p| {
            b.iter(|| solve_even(p).expect("solves").makespan());
        });
    }
    group.finish();
}

fn component_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("component_parallel");
    group.sample_size(10);
    let p = multi_component_even(8, 125, 500, 0xC0);
    let threads = default_threads();
    group.bench_with_input(
        BenchmarkId::new("whole_graph", p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| solve_even(p).expect("solves").makespan());
        },
    );
    group.bench_with_input(
        BenchmarkId::new("split_1_thread", p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| solve_split(p, 1, solve_even).expect("solves").makespan());
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("split_{threads}_threads"), p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| {
                solve_split(p, threads, solve_even)
                    .expect("solves")
                    .makespan()
            });
        },
    );
    group.finish();
}

/// Recorder cost on the full even pipeline: the disabled fast path must be
/// indistinguishable from an uninstrumented build (≤1%), and the enabled
/// cost stays small because only phase boundaries are recorded.
fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let p = even_instance(1_000, 0xD16);
    dmig_obs::set_enabled(false);
    dmig_obs::reset();
    group.bench_with_input(
        BenchmarkId::new("recorder_disabled", p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| solve_even(p).expect("solves").makespan());
        },
    );
    dmig_obs::set_enabled(true);
    group.bench_with_input(
        BenchmarkId::new("recorder_enabled", p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| solve_even(p).expect("solves").makespan());
        },
    );
    // Third column: the recorder enabled *and* the sampling profiler
    // ticking, isolating the sampler's span-lock contention on top of
    // plain instrumentation.
    let sampler = dmig_obs::sampler::start(dmig_obs::sampler::DEFAULT_INTERVAL);
    group.bench_with_input(
        BenchmarkId::new("recorder_enabled_sampler", p.num_disks()),
        &p,
        |b, p| {
            b.iter(|| solve_even(p).expect("solves").makespan());
        },
    );
    sampler.stop();
    dmig_obs::set_enabled(false);
    dmig_obs::reset();
    group.finish();
}

criterion_group!(benches, kernels_vs_seed, component_parallel, obs_overhead);
criterion_main!(benches);
