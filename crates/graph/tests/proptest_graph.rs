//! Property-based tests for the multigraph substrate.

use dmig_graph::{
    bipartite::{bipartition, is_bipartite},
    components::connected_components,
    euler::{euler_circuits, euler_orientation, euler_orientation_parallel, OrientScratch},
    io::{parse_edge_list, to_edge_list},
    stats::{degree_histogram, graph_stats},
    Multigraph, NodeId,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Multigraph> {
    (1usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..40).prop_map(move |edges| {
            let mut g = Multigraph::with_nodes(n);
            for (u, v) in edges {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
            g
        })
    })
}

/// Loop-free variant (bipartition and coloring contexts).
fn arb_loopless_graph() -> impl Strategy<Value = Multigraph> {
    (2usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n - 1), 0..40).prop_map(move |edges| {
            let mut g = Multigraph::with_nodes(n);
            for (u, v) in edges {
                let v = if v >= u { v + 1 } else { v };
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Handshake lemma: degree sum is twice the edge count.
    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }

    /// Doubling a graph (adding every edge twice) makes all degrees even
    /// and the Euler orientation perfectly balanced.
    #[test]
    fn doubled_graph_has_balanced_orientation(g in arb_graph()) {
        let mut doubled = Multigraph::with_nodes(g.num_nodes());
        for (_, ep) in g.edges() {
            doubled.add_edge(ep.u, ep.v);
            doubled.add_edge(ep.u, ep.v);
        }
        let orientation = euler_orientation(&doubled).expect("all degrees even");
        for v in doubled.nodes() {
            prop_assert_eq!(orientation.out_degree(v), doubled.degree(v) / 2);
            prop_assert_eq!(orientation.in_degree(v), doubled.degree(v) / 2);
        }
    }

    /// Euler circuits of a doubled graph cover every edge exactly once.
    #[test]
    fn euler_circuits_partition_edges(g in arb_graph()) {
        let mut doubled = Multigraph::with_nodes(g.num_nodes());
        for (_, ep) in g.edges() {
            doubled.add_edge(ep.u, ep.v);
            doubled.add_edge(ep.u, ep.v);
        }
        let circuits = euler_circuits(&doubled).expect("even degrees");
        let mut seen = vec![false; doubled.num_edges()];
        for circuit in &circuits {
            for &e in circuit {
                prop_assert!(!seen[e.index()], "edge repeated");
                seen[e.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "edge missed");
    }

    /// The chunked (parallel) orientation is byte-identical to the serial
    /// one at every worker count, whether or not the global recorder is
    /// live — the pairing-cycle decomposition is a pure function of the
    /// CSR, so neither thread scheduling nor observability may leak into
    /// the output.
    #[test]
    fn chunked_orientation_matches_serial(g in arb_graph(), enable_recorder in proptest::bool::ANY) {
        let mut doubled = Multigraph::with_nodes(g.num_nodes());
        for (_, ep) in g.edges() {
            doubled.add_edge(ep.u, ep.v);
            doubled.add_edge(ep.u, ep.v);
        }
        let serial = euler_orientation(&doubled).expect("all degrees even");
        dmig_obs::set_enabled(enable_recorder);
        let mut scratch = OrientScratch::default();
        for workers in 1usize..=4 {
            let (par, stats) = euler_orientation_parallel(&doubled, workers, &mut scratch)
                .expect("all degrees even");
            prop_assert_eq!(&serial, &par, "workers={}", workers);
            prop_assert_eq!(stats.chunks, stats.cycles + stats.stitches);
        }
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
    }

    /// Components partition the nodes, and endpoints share a component.
    #[test]
    fn components_are_consistent(g in arb_graph()) {
        let comps = connected_components(&g);
        let groups = comps.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());
        for (_, ep) in g.edges() {
            prop_assert!(comps.same_component(ep.u, ep.v));
        }
    }

    /// A reported bipartition really separates every edge; a rejection is
    /// accompanied by an odd closed walk existing (spot-checked via parity
    /// of any odd cycle the BFS found — here we just check determinism).
    #[test]
    fn bipartition_separates_edges(g in arb_loopless_graph()) {
        match bipartition(&g) {
            Ok(sides) => {
                for (_, ep) in g.edges() {
                    prop_assert_ne!(sides.is_left(ep.u), sides.is_left(ep.v));
                }
                prop_assert!(is_bipartite(&g));
            }
            Err(_) => prop_assert!(!is_bipartite(&g)),
        }
    }

    /// Edge-list round trip is the identity.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).expect("self-emitted text parses");
        prop_assert_eq!(g, parsed);
    }

    /// Stats agree with first principles.
    #[test]
    fn stats_consistent(g in arb_graph()) {
        let s = graph_stats(&g);
        prop_assert_eq!(s.num_nodes, g.num_nodes());
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert_eq!(s.max_degree, g.max_degree());
        let hist = degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_nodes());
        let weighted: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert_eq!(weighted, g.degree_sum());
    }

    /// Subgraph extraction preserves endpoints through the mapping.
    #[test]
    fn edge_subgraph_mapping(g in arb_graph()) {
        let ids: Vec<_> = g.edges().map(|(e, _)| e).step_by(2).collect();
        let (sub, mapping) = g.edge_subgraph(&ids);
        prop_assert_eq!(sub.num_edges(), ids.len());
        for (new_idx, &old) in mapping.iter().enumerate() {
            prop_assert_eq!(sub.endpoints(dmig_graph::EdgeId::new(new_idx)), g.endpoints(old));
        }
    }
}
