//! Typed identifiers for nodes and edges.
//!
//! The scheduling algorithms juggle several index spaces at once (disks,
//! transfer edges, split copies, flow-network vertices). Newtyped ids keep
//! those spaces from being confused at compile time (C-NEWTYPE).

use core::fmt;

/// Identifier of a node (disk) in a [`crate::Multigraph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
///
/// # Example
///
/// ```
/// use dmig_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge (data item to migrate) in a [`crate::Multigraph`].
///
/// Edge ids are dense and stable: they are assigned in insertion order and
/// never reused, so an `EdgeId` can safely identify a data item across the
/// whole planning pipeline (padding, orientation, coloring, scheduling).
///
/// # Example
///
/// ```
/// use dmig_graph::EdgeId;
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(id: EdgeId) -> Self {
        id.index()
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(NodeId::from(42usize), v);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(11);
        assert_eq!(e.index(), 11);
        assert_eq!(usize::from(e), 11);
        assert_eq!(EdgeId::from(11usize), e);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(EdgeId::new(9).to_string(), "e9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(3) > EdgeId::new(2));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
