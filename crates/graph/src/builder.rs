//! Convenience builder for transfer graphs.

use crate::{EdgeId, Multigraph, NodeId};

/// Incremental builder for a [`Multigraph`] (C-BUILDER).
///
/// The builder grows the node set on demand: adding an edge `(u, v)` with
/// endpoints beyond the current node count allocates the missing nodes, so
/// instances can be written down in one pass without pre-counting disks.
///
/// # Example
///
/// ```
/// use dmig_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .edge(0, 1)
///     .edge(1, 2)
///     .parallel_edges(0, 2, 3)
///     .build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(usize, usize)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Ensures the graph has at least `n` nodes even if some are isolated.
    #[must_use]
    pub fn nodes(mut self, n: usize) -> Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Adds one edge between (0-based) node indices `u` and `v`.
    #[must_use]
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds `k` parallel edges between `u` and `v`.
    #[must_use]
    pub fn parallel_edges(mut self, u: usize, v: usize, k: usize) -> Self {
        for _ in 0..k {
            self.edges.push((u, v));
        }
        self
    }

    /// Adds edges from an iterator of `(u, v)` pairs.
    #[must_use]
    pub fn edges_from<I: IntoIterator<Item = (usize, usize)>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Builds the multigraph; edge ids follow insertion order.
    #[must_use]
    pub fn build(&self) -> Multigraph {
        let n = self
            .edges
            .iter()
            .map(|&(u, v)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_nodes);
        let mut g = Multigraph::with_capacity(n, self.edges.len());
        for &(u, v) in &self.edges {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        g
    }

    /// Builds the graph and also returns the edge ids in insertion order.
    #[must_use]
    pub fn build_with_edge_ids(&self) -> (Multigraph, Vec<EdgeId>) {
        let g = self.build();
        let ids = (0..g.num_edges()).map(EdgeId::new).collect();
        (g, ids)
    }
}

impl FromIterator<(usize, usize)> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        GraphBuilder::new().edges_from(iter)
    }
}

/// Builds the complete graph `K_n` with `m` parallel edges per pair — the
/// family used by the paper's Fig. 2 motivating example (`K_3`, `m = M`).
///
/// # Example
///
/// ```
/// use dmig_graph::builder::complete_multigraph;
/// let g = complete_multigraph(3, 2);
/// assert_eq!(g.num_edges(), 6);
/// assert_eq!(g.max_degree(), 4);
/// ```
#[must_use]
pub fn complete_multigraph(n: usize, m: usize) -> Multigraph {
    let mut b = GraphBuilder::new().nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b = b.parallel_edges(u, v, m);
        }
    }
    b.build()
}

/// Builds a cycle `C_n` with `m` parallel edges per cycle edge.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle_multigraph(n: usize, m: usize) -> Multigraph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new().nodes(n);
    for u in 0..n {
        b = b.parallel_edges(u, (u + 1) % n, m);
    }
    b.build()
}

/// Builds a star with `leaves` leaves and `m` parallel edges per spoke
/// (hub is node 0) — the shape of the slow-node bottleneck experiment (E7).
#[must_use]
pub fn star_multigraph(leaves: usize, m: usize) -> Multigraph {
    let mut b = GraphBuilder::new().nodes(leaves + 1);
    for leaf in 1..=leaves {
        b = b.parallel_edges(0, leaf, m);
    }
    b.build()
}

/// Builds a path `P_n` (n nodes, n-1 edges) with `m` parallel edges per hop.
#[must_use]
pub fn path_multigraph(n: usize, m: usize) -> Multigraph {
    let mut b = GraphBuilder::new().nodes(n);
    for u in 0..n.saturating_sub(1) {
        b = b.parallel_edges(u, u + 1, m);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_nodes_on_demand() {
        let g = GraphBuilder::new().edge(5, 2).build();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_min_nodes() {
        let g = GraphBuilder::new().nodes(10).edge(0, 1).build();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn builder_from_iterator() {
        let g: Multigraph = [(0, 1), (1, 2)]
            .into_iter()
            .collect::<GraphBuilder>()
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn build_with_edge_ids_orders_match() {
        let (g, ids) = GraphBuilder::new()
            .edge(0, 1)
            .edge(1, 2)
            .build_with_edge_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(g.endpoints(ids[0]).u.index(), 0);
        assert_eq!(g.endpoints(ids[1]).u.index(), 1);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_multigraph(4, 3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6 * 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 9);
        }
    }

    #[test]
    fn cycle_graph_shape() {
        let g = cycle_multigraph(5, 2);
        assert_eq!(g.num_edges(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_too_small_panics() {
        let _ = cycle_multigraph(2, 1);
    }

    #[test]
    fn star_graph_shape() {
        let g = star_multigraph(6, 2);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.degree(0.into()), 12);
        assert_eq!(g.degree(3.into()), 2);
    }

    #[test]
    fn path_graph_shape() {
        let g = path_multigraph(4, 1);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(1.into()), 2);
        let empty = path_multigraph(0, 1);
        assert_eq!(empty.num_edges(), 0);
    }
}
