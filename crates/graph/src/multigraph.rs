//! The undirected multigraph at the heart of the migration problem.

use core::fmt;

use crate::{EdgeId, GraphError, NodeId};

/// The two endpoints of an edge.
///
/// For a self-loop both endpoints are equal. `Endpoints` is deliberately a
/// plain data carrier with public fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Endpoints {
    /// First endpoint (the *source* disk of the data item, where relevant).
    pub u: NodeId,
    /// Second endpoint (the *destination* disk).
    pub v: NodeId,
}

impl Endpoints {
    /// Returns the endpoint that is not `w`.
    ///
    /// For a self-loop returns `w` itself.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not an endpoint of this edge.
    #[inline]
    #[must_use]
    pub fn other(self, w: NodeId) -> NodeId {
        if w == self.u {
            self.v
        } else {
            assert_eq!(w, self.v, "node {w} is not an endpoint of this edge");
            self.u
        }
    }

    /// Returns `true` if `w` is one of the two endpoints.
    #[inline]
    #[must_use]
    pub fn contains(self, w: NodeId) -> bool {
        self.u == w || self.v == w
    }

    /// Returns `true` if both endpoints coincide.
    #[inline]
    #[must_use]
    pub fn is_loop(self) -> bool {
        self.u == self.v
    }
}

impl fmt::Display for Endpoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// An undirected multigraph: the paper's *transfer graph*.
///
/// Nodes model disks; each edge models one unit-size data item that must
/// move between its endpoints. Parallel edges (several items between the
/// same pair of disks) and self-loops (used internally for degree padding in
/// the even-capacity algorithm, §IV step 1) are both supported.
///
/// Degree convention: a self-loop contributes **2** to the degree of its
/// node, matching the Euler-circuit view used by the paper's algorithm.
///
/// Edge ids are assigned densely in insertion order and are never
/// invalidated; algorithms that need a mutated graph build a new one and
/// keep a mapping back to the original ids (see [`Multigraph::edge_subgraph`]).
///
/// # Example
///
/// ```
/// use dmig_graph::Multigraph;
///
/// let mut g = Multigraph::with_nodes(4);
/// let e0 = g.add_edge(0.into(), 1.into());
/// let e1 = g.add_edge(0.into(), 1.into()); // parallel edge
/// let e2 = g.add_edge(2.into(), 2.into()); // self-loop
/// assert_eq!(g.endpoints(e0), g.endpoints(e1));
/// assert_eq!(g.degree(0.into()), 2);
/// assert_eq!(g.degree(2.into()), 2); // loop counts twice
/// assert_eq!(g.multiplicity(0.into(), 1.into()), 2);
/// let _ = e2;
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Multigraph {
    edges: Vec<Endpoints>,
    /// Incidence lists: for each node, the ids of incident edges.
    /// A self-loop appears twice in its node's list.
    adjacency: Vec<Vec<EdgeId>>,
}

impl Multigraph {
    /// Creates an empty graph with no nodes.
    #[must_use]
    pub fn new() -> Self {
        Multigraph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Multigraph {
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` isolated nodes and room for `edges` edges,
    /// so the edge list never reallocates while building.
    #[must_use]
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        Multigraph {
            edges: Vec::with_capacity(edges),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Reserves room for `additional` more edges beyond the current count.
    ///
    /// Useful before a padding loop (the even-capacity solver adds a
    /// predictable number of self-loops and dummy edges).
    pub fn reserve_edges(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (parallel edges and loops each counted once).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::new(self.adjacency.len() - 1)
    }

    /// Adds `k` isolated nodes, returning the id of the first.
    pub fn add_nodes(&mut self, k: usize) -> NodeId {
        let first = self.adjacency.len();
        self.adjacency.resize_with(first + k, Vec::new);
        NodeId::new(first)
    }

    /// Adds an undirected edge between `u` and `v` and returns its id.
    ///
    /// Self-loops (`u == v`) are allowed and count twice toward degree.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range; use [`Multigraph::try_add_edge`]
    /// for a fallible variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.try_add_edge(u, v).expect("edge endpoint out of range")
    }

    /// Fallible variant of [`Multigraph::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not a
    /// node of this graph.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.num_nodes();
        for w in [u, v] {
            if w.index() >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    num_nodes: n,
                });
            }
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Endpoints { u, v });
        self.adjacency[u.index()].push(id);
        self.adjacency[v.index()].push(id);
        Ok(id)
    }

    /// Returns the endpoints of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> Endpoints {
        self.edges[e.index()]
    }

    /// Returns the degree of `v` (self-loops count twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Maximum degree over all nodes (`Δ` in the paper); 0 for an edgeless
    /// graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Ids of the edges incident to `v`, in insertion order.
    ///
    /// A self-loop at `v` appears **twice**. Use
    /// [`Multigraph::incident_edges_dedup`] when each incident edge is
    /// needed once.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn incident_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.adjacency[v.index()]
    }

    /// Ids of the edges incident to `v` with self-loops listed once.
    ///
    /// Allocates a fresh `Vec` per call; loops that query many nodes
    /// should reuse one buffer via
    /// [`Multigraph::incident_edges_dedup_into`] instead (the same
    /// convention as [`Multigraph::neighbors`] /
    /// [`Multigraph::neighbors_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn incident_edges_dedup(&self, v: NodeId) -> Vec<EdgeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.incident_edges_dedup_into(v, &mut out);
        out
    }

    /// Writes the ids of the edges incident to `v` (self-loops listed
    /// once) into `out`, clearing it first — the allocation-free variant
    /// of [`Multigraph::incident_edges_dedup`] for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use dmig_graph::{GraphBuilder, NodeId};
    ///
    /// let g = GraphBuilder::new().edge(0, 0).edge(0, 1).build();
    /// let mut buf = Vec::new();
    /// g.incident_edges_dedup_into(NodeId::new(0), &mut buf);
    /// assert_eq!(buf.len(), 2, "the loop is listed once");
    /// ```
    pub fn incident_edges_dedup_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        let mut last: Option<EdgeId> = None;
        for &e in &self.adjacency[v.index()] {
            // A loop is pushed twice consecutively at insertion time.
            if self.endpoints(e).is_loop() && last == Some(e) {
                last = None;
                continue;
            }
            out.push(e);
            last = Some(e);
        }
    }

    /// The raw endpoint table, indexed by edge id.
    ///
    /// Hot loops (CSR rebuilds, padding scans) iterate this slice directly
    /// instead of paying the per-item closure of [`Multigraph::edges`].
    #[inline]
    #[must_use]
    pub fn endpoints_slice(&self) -> &[Endpoints] {
        &self.edges
    }

    /// Iterates over `(EdgeId, Endpoints)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Endpoints)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &ep)| (EdgeId::new(i), ep))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// Number of parallel edges between `u` and `v`.
    ///
    /// For `u == v` counts self-loops at `u` (each loop once).
    #[must_use]
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        if u == v {
            return self.adjacency[u.index()]
                .iter()
                .filter(|&&e| self.endpoints(e).is_loop())
                .count()
                / 2;
        }
        // Iterate over the smaller incidence list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.index()]
            .iter()
            .filter(|&&e| self.endpoints(e).contains(b))
            .count()
    }

    /// Normalized `(min, max)` endpoint pairs of every edge, sorted — the
    /// shared kernel of [`Multigraph::max_multiplicity`] and
    /// [`Multigraph::is_simple`]. One allocation, no hashing.
    fn sorted_edge_keys(&self) -> Vec<(NodeId, NodeId)> {
        let mut keys: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .map(|ep| {
                if ep.u <= ep.v {
                    (ep.u, ep.v)
                } else {
                    (ep.v, ep.u)
                }
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Maximum edge multiplicity over all node pairs (`μ` in the paper).
    #[must_use]
    pub fn max_multiplicity(&self) -> usize {
        let keys = self.sorted_edge_keys();
        let mut best = 0usize;
        let mut run = 0usize;
        let mut prev: Option<(NodeId, NodeId)> = None;
        for key in keys {
            if prev == Some(key) {
                run += 1;
            } else {
                run = 1;
                prev = Some(key);
            }
            best = best.max(run);
        }
        best
    }

    /// Returns `true` if the graph has neither parallel edges nor self-loops.
    #[must_use]
    pub fn is_simple(&self) -> bool {
        if self.edges.iter().any(|ep| ep.is_loop()) {
            return false;
        }
        let keys = self.sorted_edge_keys();
        keys.windows(2).all(|w| w[0] != w[1])
    }

    /// Returns `true` if the graph contains any self-loop.
    #[must_use]
    pub fn has_loops(&self) -> bool {
        self.edges.iter().any(|ep| ep.is_loop())
    }

    /// Distinct neighbors of `v` (excluding `v` itself even when loops
    /// exist), in first-seen order.
    ///
    /// Low-degree nodes (the common case) are deduplicated by scanning the
    /// output, so no `O(n)` mark buffer is allocated per call; hot loops
    /// that visit many nodes should prefer [`Multigraph::neighbors_into`]
    /// with a reusable [`NodeMarks`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let adj = &self.adjacency[v.index()];
        let mut out = Vec::new();
        if adj.len() <= 32 {
            for &e in adj {
                let w = self.endpoints(e).other(v);
                if w != v && !out.contains(&w) {
                    out.push(w);
                }
            }
        } else {
            let mut marks = NodeMarks::new();
            self.neighbors_into(v, &mut marks, &mut out);
        }
        out
    }

    /// Appends the distinct neighbors of `v` to `out` (cleared first), in
    /// first-seen order, using `marks` as scratch — zero allocations once
    /// both buffers are warm. This is the hot-loop variant of
    /// [`Multigraph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_into(&self, v: NodeId, marks: &mut NodeMarks, out: &mut Vec<NodeId>) {
        out.clear();
        marks.begin(self.num_nodes());
        for &e in &self.adjacency[v.index()] {
            let w = self.endpoints(e).other(v);
            if w != v && marks.mark(w) {
                out.push(w);
            }
        }
    }

    /// Builds the subgraph induced by a set of edges.
    ///
    /// The result keeps **all** nodes (so node ids stay aligned) and
    /// contains exactly the given edges; the returned vector maps each new
    /// edge id back to the original edge id (`mapping[new.index()] = old`).
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of range.
    #[must_use]
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (Multigraph, Vec<EdgeId>) {
        let mut sub = Multigraph::with_capacity(self.num_nodes(), edge_ids.len());
        let mut mapping = Vec::with_capacity(edge_ids.len());
        for &e in edge_ids {
            let ep = self.endpoints(e);
            sub.add_edge(ep.u, ep.v);
            mapping.push(e);
        }
        (sub, mapping)
    }

    /// Sum of degrees (`2·|E|`); useful for sanity checks.
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Multigraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multigraph(n={}, m={})",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

/// Reusable node-marking scratch with versioned stamps: clearing between
/// uses is `O(1)` (bump the generation) instead of `O(n)` (zero the array),
/// and the buffer is allocated once for any number of queries.
///
/// # Example
///
/// ```
/// use dmig_graph::{Multigraph, NodeMarks};
///
/// let mut g = Multigraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 2.into());
/// let mut marks = NodeMarks::new();
/// let mut out = Vec::new();
/// g.neighbors_into(0.into(), &mut marks, &mut out);
/// assert_eq!(out.len(), 2); // 1 and 2, parallel edge deduplicated
/// ```
#[derive(Clone, Debug, Default)]
pub struct NodeMarks {
    stamp: Vec<u64>,
    generation: u64,
}

impl NodeMarks {
    /// Creates an empty scratch (grows on first use).
    #[must_use]
    pub fn new() -> Self {
        NodeMarks::default()
    }

    /// Starts a fresh marking pass over a graph with `n` nodes.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.generation += 1;
    }

    /// Marks `v`; returns `true` if it was not yet marked this pass.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of the range given to [`NodeMarks::begin`].
    pub fn mark(&mut self, v: NodeId) -> bool {
        let slot = &mut self.stamp[v.index()];
        if *slot == self.generation {
            false
        } else {
            *slot = self.generation;
            true
        }
    }

    /// Returns `true` if `v` has been marked this pass.
    #[must_use]
    pub fn is_marked(&self, v: NodeId) -> bool {
        self.stamp
            .get(v.index())
            .is_some_and(|&s| s == self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(m: usize) -> Multigraph {
        let mut g = Multigraph::with_nodes(3);
        for _ in 0..m {
            g.add_edge(0.into(), 1.into());
            g.add_edge(1.into(), 2.into());
            g.add_edge(0.into(), 2.into());
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = Multigraph::new();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_multiplicity(), 0);
        assert!(g.is_simple());
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Multigraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let first = g.add_nodes(3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(first, NodeId::new(2));
        let e = g.add_edge(a, b);
        assert_eq!(g.endpoints(e), Endpoints { u: a, v: b });
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 1);
    }

    #[test]
    fn try_add_edge_rejects_out_of_range() {
        let mut g = Multigraph::with_nodes(2);
        let err = g.try_add_edge(0.into(), 5.into()).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(5),
                num_nodes: 2
            }
        );
        assert_eq!(
            g.num_edges(),
            0,
            "failed insertion must not mutate the graph"
        );
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut g = Multigraph::with_nodes(1);
        let e = g.add_edge(0.into(), 0.into());
        assert_eq!(g.degree(0.into()), 2);
        assert!(g.endpoints(e).is_loop());
        assert_eq!(g.incident_edges(0.into()), &[e, e]);
        assert_eq!(g.incident_edges_dedup(0.into()), vec![e]);
        let mut buf = vec![EdgeId::new(99)];
        g.incident_edges_dedup_into(0.into(), &mut buf);
        assert_eq!(buf, vec![e], "into-variant clears and refills the buffer");
        assert_eq!(g.multiplicity(0.into(), 0.into()), 1);
        assert!(!g.is_simple());
        assert!(g.has_loops());
    }

    #[test]
    fn parallel_edges_and_multiplicity() {
        let g = triangle(4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.multiplicity(0.into(), 1.into()), 4);
        assert_eq!(g.multiplicity(1.into(), 0.into()), 4);
        assert_eq!(g.max_multiplicity(), 4);
        assert!(!g.is_simple());
        assert!(!g.has_loops());
        assert_eq!(g.max_degree(), 8);
    }

    #[test]
    fn neighbors_dedup_and_exclude_self() {
        let mut g = triangle(2);
        g.add_edge(1.into(), 1.into());
        let nbrs = g.neighbors(1.into());
        assert_eq!(nbrs, vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn endpoints_other() {
        let ep = Endpoints {
            u: NodeId::new(3),
            v: NodeId::new(8),
        };
        assert_eq!(ep.other(NodeId::new(3)), NodeId::new(8));
        assert_eq!(ep.other(NodeId::new(8)), NodeId::new(3));
        assert!(ep.contains(NodeId::new(3)));
        assert!(!ep.contains(NodeId::new(4)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn endpoints_other_panics_for_foreign_node() {
        let ep = Endpoints {
            u: NodeId::new(0),
            v: NodeId::new(1),
        };
        let _ = ep.other(NodeId::new(2));
    }

    #[test]
    fn edge_subgraph_preserves_nodes_and_maps_edges() {
        let g = triangle(1);
        let ids: Vec<EdgeId> = vec![0.into(), 2.into()];
        let (sub, mapping) = g.edge_subgraph(&ids);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping, ids);
        assert_eq!(sub.endpoints(0.into()), g.endpoints(0.into()));
        assert_eq!(sub.endpoints(1.into()), g.endpoints(2.into()));
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let mut g = triangle(3);
        g.add_edge(0.into(), 0.into());
        assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }

    #[test]
    fn display_form() {
        let g = triangle(1);
        assert_eq!(g.to_string(), "multigraph(n=3, m=3)");
    }

    #[test]
    fn is_simple_detects_duplicates_in_any_order() {
        let mut g = Multigraph::with_nodes(3);
        g.add_edge(2.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        assert!(!g.is_simple());
    }

    #[test]
    fn neighbors_into_matches_neighbors_and_reuses_buffers() {
        let mut g = triangle(3);
        g.add_edge(1.into(), 1.into());
        let mut marks = NodeMarks::new();
        let mut out = Vec::new();
        for v in g.nodes() {
            g.neighbors_into(v, &mut marks, &mut out);
            assert_eq!(out, g.neighbors(v), "mismatch at {v}");
        }
    }

    #[test]
    fn neighbors_dedups_above_scan_threshold() {
        // Degree > 32 at the hub forces the mark-buffer path.
        let mut g = Multigraph::with_nodes(4);
        for _ in 0..20 {
            g.add_edge(0.into(), 1.into());
            g.add_edge(0.into(), 2.into());
        }
        g.add_edge(0.into(), 3.into());
        assert_eq!(
            g.neighbors(0.into()),
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    fn node_marks_generations_are_independent() {
        let mut marks = NodeMarks::new();
        marks.begin(3);
        assert!(marks.mark(NodeId::new(1)));
        assert!(!marks.mark(NodeId::new(1)));
        assert!(marks.is_marked(NodeId::new(1)));
        marks.begin(3);
        assert!(
            !marks.is_marked(NodeId::new(1)),
            "new pass clears marks in O(1)"
        );
        assert!(marks.mark(NodeId::new(1)));
    }

    #[test]
    fn with_capacity_and_reserve_behave_like_with_nodes() {
        let mut a = Multigraph::with_capacity(3, 8);
        let mut b = Multigraph::with_nodes(3);
        a.reserve_edges(4);
        for g in [&mut a, &mut b] {
            g.add_edge(0.into(), 1.into());
            g.add_edge(1.into(), 2.into());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn multiplicity_iterates_smaller_side() {
        // Star with a high-degree hub: multiplicity from the leaf side.
        let mut g = Multigraph::with_nodes(5);
        for leaf in 1..5usize {
            for _ in 0..leaf {
                g.add_edge(0.into(), leaf.into());
            }
        }
        assert_eq!(g.multiplicity(0.into(), 4.into()), 4);
        assert_eq!(g.multiplicity(4.into(), 0.into()), 4);
        assert_eq!(g.max_multiplicity(), 4);
    }
}
