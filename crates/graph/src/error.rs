//! Error types for graph construction and parsing.

use core::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced by graph operations in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge id referenced an edge outside the graph.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// An Euler circuit was requested on a graph with an odd-degree node.
    OddDegree {
        /// A node whose degree is odd.
        node: NodeId,
        /// Its degree.
        degree: usize,
    },
    /// The graph is not bipartite but a bipartition was required.
    NotBipartite {
        /// A node on an odd cycle witnessing non-bipartiteness.
        witness: NodeId,
    },
    /// A textual instance failed to parse.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge} out of range for graph with {num_edges} edges"
                )
            }
            GraphError::OddDegree { node, degree } => {
                write!(
                    f,
                    "node {node} has odd degree {degree}; euler circuit requires all degrees even"
                )
            }
            GraphError::NotBipartite { witness } => {
                write!(f, "graph is not bipartite (odd cycle through {witness})")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            GraphError::NodeOutOfRange {
                node: NodeId::new(7),
                num_nodes: 3,
            },
            GraphError::EdgeOutOfRange {
                edge: EdgeId::new(9),
                num_edges: 2,
            },
            GraphError::OddDegree {
                node: NodeId::new(1),
                degree: 3,
            },
            GraphError::NotBipartite {
                witness: NodeId::new(0),
            },
            GraphError::Parse {
                line: 4,
                message: "bad token".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
