//! Descriptive statistics of transfer graphs, for experiment reporting.

use crate::{bipartite::is_bipartite, components::connected_components, Multigraph};

/// Summary statistics of a multigraph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Nodes.
    pub num_nodes: usize,
    /// Edges (parallel edges counted individually).
    pub num_edges: usize,
    /// Minimum degree over non-isolated nodes (0 if none).
    pub min_degree: usize,
    /// Maximum degree (`Δ`).
    pub max_degree: usize,
    /// Mean degree over all nodes.
    pub mean_degree: f64,
    /// Maximum edge multiplicity (`μ`).
    pub max_multiplicity: usize,
    /// Connected components (isolated nodes are singletons).
    pub components: usize,
    /// Nodes with no incident edges.
    pub isolated_nodes: usize,
    /// Whether the graph is bipartite.
    pub bipartite: bool,
    /// Whether the graph is simple (no loops, no parallel edges).
    pub simple: bool,
}

/// Computes [`GraphStats`] for `g`.
///
/// # Example
///
/// ```
/// use dmig_graph::{builder::complete_multigraph, stats::graph_stats};
///
/// let s = graph_stats(&complete_multigraph(3, 2));
/// assert_eq!(s.max_degree, 4);
/// assert_eq!(s.max_multiplicity, 2);
/// assert!(!s.bipartite);
/// ```
#[must_use]
pub fn graph_stats(g: &Multigraph) -> GraphStats {
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let min_degree = degrees
        .iter()
        .copied()
        .filter(|&d| d > 0)
        .min()
        .unwrap_or(0);
    GraphStats {
        num_nodes: g.num_nodes(),
        num_edges: g.num_edges(),
        min_degree,
        max_degree: g.max_degree(),
        mean_degree: if g.num_nodes() == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / g.num_nodes() as f64
        },
        max_multiplicity: g.max_multiplicity(),
        components: connected_components(g).count(),
        isolated_nodes: isolated,
        bipartite: is_bipartite(g),
        simple: g.is_simple(),
    }
}

/// Degree histogram: `histogram[d]` = number of nodes with degree `d`.
#[must_use]
pub fn degree_histogram(g: &Multigraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    if g.num_nodes() == 0 {
        hist.clear();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_multigraph, star_multigraph, GraphBuilder};

    #[test]
    fn stats_of_k3() {
        let s = graph_stats(&complete_multigraph(3, 2));
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.mean_degree - 4.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        assert!(!s.simple);
        assert!(!s.bipartite);
    }

    #[test]
    fn stats_with_isolated_nodes() {
        let g = GraphBuilder::new().nodes(5).edge(0, 1).build();
        let s = graph_stats(&g);
        assert_eq!(s.isolated_nodes, 3);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.components, 4);
        assert!(s.bipartite);
        assert!(s.simple);
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&Multigraph::new());
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert!(degree_histogram(&Multigraph::new()).is_empty());
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = star_multigraph(5, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_nodes());
        assert_eq!(h[2], 5); // leaves
        assert_eq!(h[10], 1); // hub
    }

    use crate::Multigraph;
}
