//! Graph-cut partitioning of the transfer multigraph into bounded cells.
//!
//! The sharded solve pipeline (`dmig-core::shard`) needs the multigraph
//! split into pieces small enough that no single worker shard owns more
//! than a bounded number of edges. Connected components come first — they
//! are free parallelism, with zero cut edges — and any component heavier
//! than the cell budget is cut by a deterministic greedy grower with a
//! min-cut refinement pass (balanced edge-count objective).
//!
//! Two layers of naming keep the determinism story straight:
//!
//! * **Cells** are the canonical unit: a pure function of the graph and
//!   the `max_cell_edges` budget, *independent of the shard count*. The
//!   schedule a sharded solve produces is a function of the cells, so it
//!   is byte-identical at every `(threads × shards)` combination.
//! * **Shards** are worker groups: [`assign_shards`] bin-packs cells onto
//!   `K` shards (deterministic LPT), which only decides *who solves what
//!   concurrently*, never what the answer is.
//!
//! Edges with both endpoints in one cell are *domestic*; edges spanning
//! two cells land in the global *boundary* set, identified by a stable
//! cut-edge id (their rank in ascending original-edge-id order). A shard
//! sees each incident cut edge as an [`EdgePointer::Foreign`] naming the
//! cut id and the peer shard, while its own edges stay
//! [`EdgePointer::Domestic`] — the wire format a multi-process fleet
//! would exchange.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::components::connected_components;
use crate::{EdgeId, Multigraph, NodeId};

/// Default per-cell edge budget: components above this are cut.
///
/// The value is a partition *parameter*, not a tuning knob: changing it
/// changes which edges are domestic vs. boundary and therefore the
/// sharded schedule. 2^18 keeps a 1e6-edge giant in 4 cells and a
/// 1e7-edge giant in ~39 — enough fan-out for any realistic core count.
pub const DEFAULT_MAX_CELL_EDGES: usize = 1 << 18;

/// A shard's view of one edge, in the style of GraphWorker's
/// `NodePointer::{Domestic, Foreign}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgePointer {
    /// The edge lives entirely inside this shard (original edge id).
    Domestic(EdgeId),
    /// A cut edge: `(stable cut-edge id, peer shard holding the other
    /// endpoint)`. The peer may equal the owning shard when both endpoint
    /// cells were packed onto the same worker — the edge still spans two
    /// cells and is scheduled by the boundary pass, not by either cell.
    Foreign(u32, u32),
}

/// One cell of the partition: a node-disjoint piece of one component,
/// carrying every edge whose endpoints both fall inside it.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Canonical component index this cell was carved from.
    pub component: usize,
    /// Piece index within the component (0 for an uncut component).
    pub piece: usize,
    /// Member nodes, ascending original id.
    pub nodes: Vec<NodeId>,
    /// Domestic edges, ascending original id.
    pub edges: Vec<EdgeId>,
}

/// The canonical cell partition of a multigraph (see the module docs).
#[derive(Clone, Debug)]
pub struct CellPartition {
    /// Cells in canonical order: by component, then by piece index.
    pub cells: Vec<Cell>,
    /// Cut edges, ascending original edge id; the position of an edge in
    /// this list is its stable cut-edge id.
    pub boundary: Vec<EdgeId>,
    /// `cell_of[node] = cell index`, `u32::MAX` for nodes in no cell
    /// (isolated, or every incident edge cut away).
    pub cell_of: Vec<u32>,
    /// Total edges of the partitioned graph.
    pub total_edges: usize,
}

impl CellPartition {
    /// Fraction of all edges that were cut to the boundary set (0 when
    /// the graph has no edges).
    #[must_use]
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.boundary.len() as f64 / self.total_edges as f64
        }
    }
}

/// Cuts `g` into cells of at most `max_cell_edges` domestic edges each
/// (budget 0 is treated as 1).
///
/// Connected components are taken whole when they fit; a heavier
/// component is grown into `≥ ⌈m_c / max_cell_edges⌉` pieces by a
/// deterministic greedy grower (absorb the frontier node with the best
/// Fiduccia–Mattheyses score; close the piece once it holds its balanced
/// share of edges, or a little early when the frontier sits on a sparse
/// seam), followed by two min-cut refinement passes (move a node to the
/// adjacent piece holding more of its neighbors, when the balance
/// tolerance allows). All ties break on ascending original ids, so the
/// partition is a pure function of `(g, max_cell_edges)`.
#[must_use]
pub fn partition_cells(g: &Multigraph, max_cell_edges: usize) -> CellPartition {
    let max_cell_edges = max_cell_edges.max(1);
    let comps = connected_components(g);
    let groups = comps.groups();

    let mut comp_edges = vec![0usize; groups.len()];
    for (_, ep) in g.edges() {
        comp_edges[comps.component_of(ep.u)] += 1;
    }

    // Provisional cell ids: whole components keep one id, heavy ones get
    // one per piece. `cell_of` is the only state the edge pass needs.
    let mut cell_of = vec![u32::MAX; g.num_nodes()];
    let mut cell_meta: Vec<(usize, usize)> = Vec::new(); // (component, piece)
    for (c, group) in groups.iter().enumerate() {
        if comp_edges[c] == 0 {
            continue; // isolated nodes form no cell
        }
        let base = u32::try_from(cell_meta.len()).expect("cell count fits in u32");
        if comp_edges[c] <= max_cell_edges {
            for &v in group {
                cell_of[v.index()] = base;
            }
            cell_meta.push((c, 0));
        } else {
            let pieces = cut_component(g, group, comp_edges[c], max_cell_edges, &mut cell_of, base);
            for piece in 0..pieces {
                cell_meta.push((c, piece));
            }
        }
    }

    // Single ascending edge pass: domestic edges land in their cell,
    // cross-cell edges in the boundary (ascending by construction).
    let mut cell_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); cell_meta.len()];
    let mut boundary = Vec::new();
    for (e, ep) in g.edges() {
        let cu = cell_of[ep.u.index()];
        let cv = cell_of[ep.v.index()];
        if cu == cv {
            cell_edges[cu as usize].push(e);
        } else {
            boundary.push(e);
        }
    }

    // Compact away cells whose every edge went to the boundary (possible
    // for an over-refined piece); their nodes keep no domestic work.
    let mut remap = vec![u32::MAX; cell_meta.len()];
    let mut cells: Vec<Cell> = Vec::new();
    for (old, edges) in cell_edges.into_iter().enumerate() {
        if edges.is_empty() {
            continue;
        }
        remap[old] = u32::try_from(cells.len()).expect("cell count fits in u32");
        let (component, piece) = cell_meta[old];
        cells.push(Cell {
            component,
            piece,
            nodes: Vec::new(),
            edges,
        });
    }
    for (v, slot) in cell_of.iter_mut().enumerate() {
        let new = if *slot == u32::MAX {
            u32::MAX
        } else {
            remap[*slot as usize]
        };
        *slot = new;
        if new != u32::MAX {
            cells[new as usize].nodes.push(NodeId::new(v));
        }
    }

    CellPartition {
        cells,
        boundary,
        cell_of,
        total_edges: g.num_edges(),
    }
}

/// Grows at least `⌈m_c / max⌉` pieces over one connected component
/// (more when seam-aligned early closes fire) and refines the cut;
/// writes provisional cell ids (`base + piece`) into `cell_of` and
/// returns the piece count.
fn cut_component(
    g: &Multigraph,
    group: &[NodeId],
    m_c: usize,
    max_cell_edges: usize,
    cell_of: &mut [u32],
    base: u32,
) -> usize {
    let planned = m_c.div_ceil(max_cell_edges);
    let target = m_c.div_ceil(planned);
    // A piece may close early, from `low_water` edges on, when the best
    // frontier candidate would worsen the cut (see below): a balanced cut
    // slightly off the target beats a balanced cut through a dense block.
    let low_water = (target - target / 4).max(1);
    // Balance tolerance for refinement moves: a piece may grow to the
    // budget, but no further than ~1.25x its balanced share.
    let limit = max_cell_edges.min(target + (target / 4).max(1));
    let sentinel = u32::MAX;

    // Greedy graph growing with the Fiduccia–Mattheyses score: each
    // piece repeatedly absorbs the frontier node maximizing
    // `2*gain - degree` — edges into the piece minus edges still facing
    // out (ties: smallest node id). Preferring *low external degree* over
    // raw gain keeps growth inside a dense neighborhood until it is
    // exhausted, so on clustered graphs the piece boundary lands on the
    // sparse seams instead of chasing heavy bridge edges. A lazy max-heap
    // of (score, node) entries keyed per piece epoch keeps this
    // O(m log n) and fully deterministic. `internal` tracks, per piece,
    // the number of edges with both endpoints already assigned to it —
    // exact, because an edge is counted when its second endpoint lands.
    let mut internal: Vec<usize> = vec![0];
    let mut current = 0usize;
    let mut heap: BinaryHeap<(i64, Reverse<usize>)> = BinaryHeap::new();
    let mut gain = vec![0i64; g.num_nodes()];
    let mut stamp = vec![0u32; g.num_nodes()];
    let mut epoch = 1u32;
    let mut seed_cursor = 0usize;
    let mut assigned = 0usize;
    let score = |gain: i64, vi: usize| 2 * gain - g.degree(NodeId::new(vi)) as i64;
    while assigned < group.len() {
        // Surface the best fresh frontier candidate, discarding entries
        // that are assigned or stale (superseded by a higher-gain push).
        let candidate = loop {
            match heap.peek() {
                Some(&(sval, Reverse(vi))) => {
                    if cell_of[vi] == sentinel {
                        let fresh = if stamp[vi] == epoch { gain[vi] } else { 0 };
                        if sval == score(fresh, vi) {
                            break Some((sval, vi));
                        }
                    }
                    heap.pop();
                }
                None => break None,
            }
        };
        // Close the piece when it reached its balanced share, or from
        // `low_water` on when the best candidate has a negative score —
        // meaning even the best absorption adds more cut edges than it
        // removes, i.e. the piece just finished a dense neighborhood and
        // the frontier sits on a sparse seam.
        let full = internal[current] >= target;
        let at_seam =
            internal[current] >= low_water && candidate.map_or(true, |(sval, _)| sval < 0);
        let v = match candidate {
            Some((_, vi)) if !full && !at_seam => {
                heap.pop();
                NodeId::new(vi)
            }
            _ => {
                if full || at_seam {
                    // Frontier gains are meaningless for the next (empty)
                    // piece: bump the epoch and drop the heap.
                    current += 1;
                    internal.push(0);
                    epoch += 1;
                    heap.clear();
                }
                // No frontier (fresh piece, or the piece walled off the
                // rest): seed with the smallest unassigned node.
                while cell_of[group[seed_cursor].index()] != sentinel {
                    seed_cursor += 1;
                }
                group[seed_cursor]
            }
        };
        let cell = base + u32::try_from(current).expect("piece fits in u32");
        let (v_gain, loops) = piece_gain(g, v, cell, cell_of);
        cell_of[v.index()] = cell;
        internal[current] += v_gain + loops;
        assigned += 1;
        for &e in g.incident_edges(v) {
            let ep = g.endpoints(e);
            let w = if ep.u == v { ep.v } else { ep.u };
            if w != v && cell_of[w.index()] == sentinel {
                let wi = w.index();
                if stamp[wi] != epoch {
                    stamp[wi] = epoch;
                    gain[wi] = 0;
                }
                gain[wi] += 1;
                heap.push((score(gain[wi], wi), Reverse(wi)));
            }
        }
    }
    let pieces = internal.len();

    // Min-cut refinement: move a node to the adjacent piece holding more
    // of its neighbors when that piece has balance headroom. Two passes
    // in ascending node order; fully deterministic.
    let mut cnt = vec![0usize; pieces];
    let mut touched: Vec<usize> = Vec::new();
    for _pass in 0..2 {
        for &v in group {
            let p = (cell_of[v.index()] - base) as usize;
            let mut loop_listings = 0usize;
            touched.clear();
            for &e in g.incident_edges(v) {
                let ep = g.endpoints(e);
                let w = if ep.u == v { ep.v } else { ep.u };
                if w == v {
                    loop_listings += 1; // each self-loop listed twice
                    continue;
                }
                let q = (cell_of[w.index()] - base) as usize;
                if cnt[q] == 0 {
                    touched.push(q);
                }
                cnt[q] += 1;
            }
            let loops = loop_listings / 2;
            let mut best = p;
            for &q in &touched {
                if q != p
                    && (cnt[q] > cnt[best] || (cnt[q] == cnt[best] && q < best))
                    && internal[q] + cnt[q] + loops <= limit
                {
                    best = q;
                }
            }
            if best != p && cnt[best] > cnt[p] {
                internal[p] -= cnt[p] + loops;
                internal[best] += cnt[best] + loops;
                cell_of[v.index()] = base + u32::try_from(best).expect("piece fits in u32");
            }
            for &q in &touched {
                cnt[q] = 0;
            }
        }
    }
    pieces
}

/// Edges from `v` into piece `cell` among already-assigned neighbors,
/// plus `v`'s own self-loop count (loops are always domestic).
fn piece_gain(g: &Multigraph, v: NodeId, cell: u32, cell_of: &[u32]) -> (usize, usize) {
    let mut gain = 0usize;
    let mut loop_listings = 0usize;
    for &e in g.incident_edges(v) {
        let ep = g.endpoints(e);
        let w = if ep.u == v { ep.v } else { ep.u };
        if w == v {
            loop_listings += 1;
        } else if cell_of[w.index()] == cell {
            gain += 1;
        }
    }
    (gain, loop_listings / 2)
}

/// Bin-packs cells onto `shards` worker shards: longest-processing-time
/// greedy over the cell edge counts, ties broken by ascending cell index
/// and ascending shard id — deterministic. Returns `shard_of[cell]`.
///
/// The assignment decides which worker solves which cell, never the
/// schedule itself (cells are solved into cell-indexed slots and merged
/// canonically).
#[must_use]
pub fn assign_shards(cell_edges: &[usize], shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    let mut order: Vec<usize> = (0..cell_edges.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cell_edges[i]), i));
    let mut load = vec![0usize; shards];
    let mut shard_of = vec![0u32; cell_edges.len()];
    for i in order {
        let lightest = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        shard_of[i] = u32::try_from(lightest).expect("shard count fits in u32");
        load[lightest] += cell_edges[i];
    }
    shard_of
}

/// One worker shard's view of the partition: its cells, its domestic edge
/// count, and an [`EdgePointer::Foreign`] per incident cut edge.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// Shard id (`0..shards`).
    pub shard: u32,
    /// Indices into [`CellPartition::cells`] owned by this shard.
    pub cells: Vec<usize>,
    /// Total domestic edges across the shard's cells.
    pub domestic_edges: u64,
    /// Foreign pointers, ascending cut-edge id: one entry per cut edge
    /// with at least one endpoint cell in this shard (two shards each
    /// hold a pointer to the same cut id; a cut edge internal to one
    /// shard's cell set appears once, with `peer == shard`).
    pub foreign: Vec<EdgePointer>,
}

/// Builds the per-shard views for a cell-to-shard assignment.
///
/// A boundary endpoint with no cell (every incident edge cut away) does
/// not pin the edge to a second shard: the pointer appears only in the
/// shard of the celled endpoint (or shard 0 when neither endpoint has a
/// cell).
///
/// # Panics
///
/// Panics if `assignment` is not aligned with `partition.cells` or names
/// a shard `>= shards`.
#[must_use]
pub fn shard_views(
    g: &Multigraph,
    partition: &CellPartition,
    assignment: &[u32],
    shards: usize,
) -> Vec<ShardView> {
    assert_eq!(
        assignment.len(),
        partition.cells.len(),
        "one shard per cell"
    );
    let mut views: Vec<ShardView> = (0..shards.max(1))
        .map(|s| ShardView {
            shard: u32::try_from(s).expect("shard count fits in u32"),
            cells: Vec::new(),
            domestic_edges: 0,
            foreign: Vec::new(),
        })
        .collect();
    for (cell, (&shard, c)) in assignment.iter().zip(&partition.cells).enumerate() {
        let view = &mut views[shard as usize];
        view.cells.push(cell);
        view.domestic_edges += c.edges.len() as u64;
    }
    for (cut_id, &e) in partition.boundary.iter().enumerate() {
        let cut_id = u32::try_from(cut_id).expect("cut ids fit in u32");
        let ep = g.endpoints(e);
        let shard_of = |v: NodeId| {
            let cell = partition.cell_of[v.index()];
            (cell != u32::MAX).then(|| assignment[cell as usize])
        };
        match (shard_of(ep.u), shard_of(ep.v)) {
            (Some(su), Some(sv)) => {
                views[su as usize]
                    .foreign
                    .push(EdgePointer::Foreign(cut_id, sv));
                if sv != su {
                    views[sv as usize]
                        .foreign
                        .push(EdgePointer::Foreign(cut_id, su));
                }
            }
            (Some(s), None) | (None, Some(s)) => {
                views[s as usize]
                    .foreign
                    .push(EdgePointer::Foreign(cut_id, s));
            }
            (None, None) => {
                views[0].foreign.push(EdgePointer::Foreign(cut_id, 0));
            }
        }
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// A ladder of `rungs` squares: 2*rungs+2 nodes, 3*rungs+1 edges,
    /// one connected component.
    fn ladder(rungs: usize) -> Multigraph {
        let mut b = GraphBuilder::new().nodes(2 * rungs + 2);
        for i in 0..=rungs {
            b = b.edge(2 * i, 2 * i + 1); // rung
        }
        for i in 0..rungs {
            b = b.edge(2 * i, 2 * i + 2); // left rail
            b = b.edge(2 * i + 1, 2 * i + 3); // right rail
        }
        b.build()
    }

    fn coverage_ok(g: &Multigraph, p: &CellPartition) {
        // Every edge in exactly one cell or the boundary set.
        let mut seen = vec![0u32; g.num_edges()];
        for c in &p.cells {
            for &e in &c.edges {
                seen[e.index()] += 1;
            }
        }
        for &e in &p.boundary {
            seen[e.index()] += 1;
        }
        assert!(seen.iter().all(|&s| s == 1), "each edge covered once");
        // Cells are node-disjoint and agree with cell_of.
        let mut owner = vec![u32::MAX; g.num_nodes()];
        for (i, c) in p.cells.iter().enumerate() {
            assert!(c.nodes.windows(2).all(|w| w[0] < w[1]), "nodes ascending");
            assert!(c.edges.windows(2).all(|w| w[0].index() < w[1].index()));
            for &v in &c.nodes {
                assert_eq!(owner[v.index()], u32::MAX, "cells node-disjoint");
                owner[v.index()] = i as u32;
            }
        }
        assert_eq!(owner, p.cell_of);
        // Domestic edges really are domestic; boundary edges really span.
        for (i, c) in p.cells.iter().enumerate() {
            for &e in &c.edges {
                let ep = g.endpoints(e);
                assert_eq!(p.cell_of[ep.u.index()], i as u32);
                assert_eq!(p.cell_of[ep.v.index()], i as u32);
            }
        }
        for &e in &p.boundary {
            let ep = g.endpoints(e);
            let (cu, cv) = (p.cell_of[ep.u.index()], p.cell_of[ep.v.index()]);
            // Endpoints in two different cells, or in a dropped cell
            // (every edge cut away).
            assert!(cu != cv || cu == u32::MAX);
        }
        assert!(p.boundary.windows(2).all(|w| w[0].index() < w[1].index()));
    }

    #[test]
    fn small_components_stay_whole() {
        let g = GraphBuilder::new()
            .nodes(7)
            .edge(0, 1)
            .edge(1, 2)
            .edge(3, 4)
            .edge(4, 5)
            .edge(5, 3)
            .build();
        let p = partition_cells(&g, DEFAULT_MAX_CELL_EDGES);
        assert_eq!(p.cells.len(), 2);
        assert!(p.boundary.is_empty());
        assert_eq!(p.cut_fraction(), 0.0);
        assert_eq!(p.cells[0].component, 0);
        assert_eq!(p.cells[1].component, 1);
        assert_eq!(p.cell_of[6], u32::MAX); // isolated node, no cell
        coverage_ok(&g, &p);
    }

    #[test]
    fn heavy_component_is_cut_balanced() {
        let g = ladder(100); // 301 edges, one component
        let p = partition_cells(&g, 100);
        assert!(p.cells.len() >= 4, "301 edges / 100 budget => >= 4 pieces");
        for c in &p.cells {
            assert!(c.edges.len() <= 100, "cell respects the budget");
        }
        assert!(!p.boundary.is_empty());
        // A ladder cut into contiguous chunks severs only a few rungs+rails.
        assert!(
            p.boundary.len() <= 24,
            "greedy+refine keeps the ladder cut small, got {}",
            p.boundary.len()
        );
        coverage_ok(&g, &p);
    }

    #[test]
    fn partition_is_deterministic_and_loop_safe() {
        let g = GraphBuilder::new()
            .nodes(6)
            .edge(0, 0)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 5)
            .edge(5, 0)
            .build();
        let a = partition_cells(&g, 3);
        let bb = partition_cells(&g, 3);
        assert_eq!(format!("{a:?}"), format!("{bb:?}"));
        coverage_ok(&g, &a);
        // The self-loop at node 0 must be domestic wherever node 0 lives.
        let loop_cell = a.cell_of[0];
        assert!(a.cells[loop_cell as usize].edges.iter().any(|e| {
            let ep = g.endpoints(*e);
            ep.u == ep.v
        }));
    }

    #[test]
    fn budget_zero_is_treated_as_one() {
        let g = GraphBuilder::new().nodes(3).edge(0, 1).edge(1, 2).build();
        let p = partition_cells(&g, 0);
        coverage_ok(&g, &p);
        for c in &p.cells {
            assert!(c.edges.len() <= 1);
        }
    }

    #[test]
    fn lpt_assignment_balances_and_is_deterministic() {
        let counts = [50usize, 30, 20, 10, 10, 5];
        let a = assign_shards(&counts, 2);
        assert_eq!(a, assign_shards(&counts, 2));
        let mut load = [0usize; 2];
        for (i, &s) in a.iter().enumerate() {
            load[s as usize] += counts[i];
        }
        assert_eq!(load.iter().sum::<usize>(), 125);
        assert!(load[0].abs_diff(load[1]) <= 15, "LPT is near-balanced");
        // More shards than cells, and zero shards, both behave.
        assert_eq!(assign_shards(&[7], 4), vec![0]);
        assert_eq!(assign_shards(&[], 0), Vec::<u32>::new());
    }

    #[test]
    fn shard_views_expose_domestic_and_foreign_pointers() {
        let g = ladder(100);
        let p = partition_cells(&g, 100);
        let counts: Vec<usize> = p.cells.iter().map(|c| c.edges.len()).collect();
        let assignment = assign_shards(&counts, 2);
        let views = shard_views(&g, &p, &assignment, 2);
        assert_eq!(views.len(), 2);
        let domestic: u64 = views.iter().map(|v| v.domestic_edges).sum();
        assert_eq!(domestic as usize + p.boundary.len(), g.num_edges());
        // Every cut id appears in the views of both endpoint shards
        // (once, when both endpoints share a shard).
        for (cut_id, &e) in p.boundary.iter().enumerate() {
            let ep = g.endpoints(e);
            let su = assignment[p.cell_of[ep.u.index()] as usize];
            let sv = assignment[p.cell_of[ep.v.index()] as usize];
            let hits: Vec<(u32, u32)> = views
                .iter()
                .flat_map(|view| view.foreign.iter().map(move |f| (view.shard, *f)))
                .filter_map(|(s, f)| match f {
                    EdgePointer::Foreign(id, peer) if id as usize == cut_id => Some((s, peer)),
                    _ => None,
                })
                .collect();
            if su == sv {
                assert_eq!(hits, vec![(su, sv)]);
            } else {
                assert_eq!(hits.len(), 2);
                assert!(hits.contains(&(su, sv)) && hits.contains(&(sv, su)));
            }
        }
        for view in &views {
            let ids: Vec<u32> = view
                .foreign
                .iter()
                .map(|f| match f {
                    EdgePointer::Foreign(id, _) => *id,
                    EdgePointer::Domestic(_) => unreachable!(),
                })
                .collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "foreign ids ascending");
        }
    }
}
