//! Euler circuits and balanced edge orientations (Hierholzer's algorithm).
//!
//! Step (2) of the paper's even-capacity algorithm (§IV) finds an Euler
//! cycle of the padded transfer graph and step (3) uses the traversal
//! direction of each edge to build a bipartite graph `H`. The essential
//! property delivered here is the *balanced orientation*: when every degree
//! is even, orienting each edge along an Euler circuit gives every node
//! in-degree = out-degree = `deg/2`.

use crate::{EdgeId, GraphError, Multigraph, NodeId};

/// A balanced orientation of a multigraph obtained from Euler circuits.
///
/// Produced by [`euler_orientation`]. For each edge the orientation records
/// a `tail → head` direction such that at every node the number of outgoing
/// edges equals the number of incoming edges (self-loops count once as
/// outgoing and once as incoming at their node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EulerOrientation {
    tail: Vec<NodeId>,
    head: Vec<NodeId>,
}

impl EulerOrientation {
    /// The tail (origin) of edge `e` under this orientation.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn tail(&self, e: EdgeId) -> NodeId {
        self.tail[e.index()]
    }

    /// The head (target) of edge `e` under this orientation.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn head(&self, e: EdgeId) -> NodeId {
        self.head[e.index()]
    }

    /// Number of oriented edges.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Returns `true` if no edges were oriented.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Iterates over `(edge, tail, head)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.tail
            .iter()
            .zip(self.head.iter())
            .enumerate()
            .map(|(i, (&t, &h))| (EdgeId::new(i), t, h))
    }

    /// Out-degree of `v` under this orientation (loops count once).
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.tail.iter().filter(|&&t| t == v).count()
    }

    /// In-degree of `v` under this orientation (loops count once).
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.head.iter().filter(|&&h| h == v).count()
    }
}

/// Computes Euler circuits on every connected component of `g` and returns
/// the induced balanced orientation.
///
/// Every node must have even degree (self-loops counting twice). Isolated
/// nodes are fine. Components are handled independently, so the graph need
/// not be connected.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
///
/// # Example
///
/// ```
/// use dmig_graph::{builder::complete_multigraph, euler::euler_orientation};
///
/// // K3 with 2 parallel edges: every degree is 4.
/// let g = complete_multigraph(3, 2);
/// let orient = euler_orientation(&g)?;
/// for v in g.nodes() {
///     assert_eq!(orient.out_degree(v), 2);
///     assert_eq!(orient.in_degree(v), 2);
/// }
/// # Ok::<(), dmig_graph::GraphError>(())
/// ```
pub fn euler_orientation(g: &Multigraph) -> Result<EulerOrientation, GraphError> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<OrientScratch> =
            std::cell::RefCell::new(OrientScratch::new());
    }
    SCRATCH.with(|scratch| euler_orientation_with(g, &mut scratch.borrow_mut()))
}

/// Reusable mark/cursor buffers for [`euler_orientation_with`].
///
/// The component-parallel and quota-recursion workers orient many padded
/// graphs in a row; keeping the `used` marks and per-node cursors alive
/// across calls removes two allocations per orientation.
/// [`euler_orientation`] itself reuses a thread-local arena, so ordinary
/// callers get this for free.
#[derive(Clone, Debug, Default)]
pub struct OrientScratch {
    used: Vec<bool>,
    cursor: Vec<usize>,
}

impl OrientScratch {
    /// Creates an empty arena (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        OrientScratch::default()
    }
}

/// [`euler_orientation`] with caller-owned scratch buffers.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
pub fn euler_orientation_with(
    g: &Multigraph,
    scratch: &mut OrientScratch,
) -> Result<EulerOrientation, GraphError> {
    for v in g.nodes() {
        let d = g.degree(v);
        if d % 2 != 0 {
            return Err(GraphError::OddDegree { node: v, degree: d });
        }
    }

    let m = g.num_edges();
    let mut tail = vec![NodeId::default(); m];
    let mut head = vec![NodeId::default(); m];
    scratch.used.clear();
    scratch.used.resize(m, false);
    let used = &mut scratch.used;
    // Flat CSR snapshot: the inner walk reads contiguous (edge, far-endpoint)
    // slots instead of chasing one incidence Vec per node and resolving
    // endpoints per edge.
    let csr = g.to_csr();
    // Cursor into each node's incidence slots so each slot is examined at
    // most once overall: O(V + E) in total.
    scratch.cursor.clear();
    scratch.cursor.resize(g.num_nodes(), 0);
    let cursor = &mut scratch.cursor;

    for start in g.nodes() {
        // Skip nodes whose incident edges were already consumed by an
        // earlier circuit of the same component.
        if csr.incident(start)[cursor[start.index()]..]
            .iter()
            .all(|&(e, _)| used[e.index()])
        {
            continue;
        }

        // Hierholzer: walk until stuck, then backtrack splicing sub-circuits.
        // For orientation purposes we only need the direction each edge is
        // traversed, not the spliced circuit order itself.
        let mut stack: Vec<NodeId> = vec![start];
        while let Some(&v) = stack.last() {
            let vi = v.index();
            let adj = csr.incident(v);
            let mut advanced = false;
            while cursor[vi] < adj.len() {
                let (e, w) = adj[cursor[vi]];
                cursor[vi] += 1;
                if used[e.index()] {
                    continue;
                }
                used[e.index()] = true;
                tail[e.index()] = v;
                head[e.index()] = w;
                stack.push(w);
                advanced = true;
                break;
            }
            if !advanced {
                stack.pop();
            }
        }
    }

    debug_assert!(used.iter().all(|&u| u), "every edge must be oriented");
    Ok(EulerOrientation { tail, head })
}

/// Computes an explicit Euler circuit for each connected component with
/// edges, as sequences of edge ids in traversal order.
///
/// This is the classical output of Hierholzer's algorithm; the scheduling
/// pipeline itself only needs [`euler_orientation`], but explicit circuits
/// are useful for debugging and for tests that check circuit validity.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] if any node has odd degree.
pub fn euler_circuits(g: &Multigraph) -> Result<Vec<Vec<EdgeId>>, GraphError> {
    for v in g.nodes() {
        let d = g.degree(v);
        if d % 2 != 0 {
            return Err(GraphError::OddDegree { node: v, degree: d });
        }
    }

    let m = g.num_edges();
    let mut used = vec![false; m];
    let csr = g.to_csr();
    let mut cursor = vec![0usize; g.num_nodes()];
    let mut circuits = Vec::new();

    for start in g.nodes() {
        // Find an unused incident edge to seed a circuit.
        let has_unused = csr.incident(start).iter().any(|&(e, _)| !used[e.index()]);
        if !has_unused {
            continue;
        }
        // Hierholzer with an explicit edge stack: on backtrack, the popped
        // edges form the circuit in reverse.
        let mut node_stack: Vec<NodeId> = vec![start];
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        let mut circuit: Vec<EdgeId> = Vec::new();
        while let Some(&v) = node_stack.last() {
            let vi = v.index();
            let adj = csr.incident(v);
            let mut advanced = false;
            while cursor[vi] < adj.len() {
                let (e, w) = adj[cursor[vi]];
                cursor[vi] += 1;
                if used[e.index()] {
                    continue;
                }
                used[e.index()] = true;
                node_stack.push(w);
                edge_stack.push(e);
                advanced = true;
                break;
            }
            if !advanced {
                node_stack.pop();
                if let Some(e) = edge_stack.pop() {
                    circuit.push(e);
                }
            }
        }
        circuit.reverse();
        if !circuit.is_empty() {
            circuits.push(circuit);
        }
    }
    Ok(circuits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_multigraph, cycle_multigraph, GraphBuilder};

    fn check_balanced(g: &Multigraph, o: &EulerOrientation) {
        assert_eq!(o.len(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(o.out_degree(v), g.degree(v) / 2, "out-degree at {v}");
            assert_eq!(o.in_degree(v), g.degree(v) / 2, "in-degree at {v}");
        }
        for (e, t, h) in o.iter() {
            let ep = g.endpoints(e);
            assert!(
                (ep.u == t && ep.v == h) || (ep.u == h && ep.v == t),
                "orientation must match endpoints"
            );
        }
    }

    #[test]
    fn empty_graph_orients_trivially() {
        let g = Multigraph::with_nodes(3);
        let o = euler_orientation(&g).unwrap();
        assert!(o.is_empty());
    }

    #[test]
    fn odd_degree_rejected() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let err = euler_orientation(&g).unwrap_err();
        assert!(matches!(err, GraphError::OddDegree { degree: 1, .. }));
        assert!(euler_circuits(&g).is_err());
    }

    #[test]
    fn cycle_is_balanced() {
        let g = cycle_multigraph(5, 1);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn complete_graph_with_even_degrees() {
        // K5 has all degrees 4 (even).
        let g = complete_multigraph(5, 1);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn parallel_edges_balanced() {
        let g = complete_multigraph(3, 4);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn self_loops_balanced() {
        let mut g = cycle_multigraph(3, 2);
        g.add_edge(1.into(), 1.into());
        g.add_edge(1.into(), 1.into());
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn disconnected_components_each_balanced() {
        // Two disjoint triangles plus isolated nodes.
        let g = GraphBuilder::new()
            .nodes(8)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(4, 5)
            .edge(5, 6)
            .edge(6, 4)
            .build();
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn circuits_cover_all_edges_and_are_walks() {
        let g = complete_multigraph(5, 2);
        let circuits = euler_circuits(&g).unwrap();
        let total: usize = circuits.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_edges());
        // Each circuit must be a closed walk: consecutive edges share a node.
        for circuit in &circuits {
            let first = g.endpoints(circuit[0]);
            // Choose the traversal direction of the first edge so that the
            // walk can continue; try both.
            let ok = [first.u, first.v].iter().any(|&start| {
                let mut at_inner = start;
                for &e in circuit {
                    let ep = g.endpoints(e);
                    if ep.u == at_inner {
                        at_inner = ep.v;
                    } else if ep.v == at_inner {
                        at_inner = ep.u;
                    } else {
                        return false;
                    }
                }
                at_inner == start
            });
            assert!(ok, "circuit is not a closed walk");
        }
    }

    #[test]
    fn circuits_distinct_edges() {
        let g = complete_multigraph(3, 6);
        let circuits = euler_circuits(&g).unwrap();
        let mut seen = std::collections::HashSet::new();
        for c in &circuits {
            for &e in c {
                assert!(seen.insert(e), "edge repeated across circuits");
            }
        }
    }

    #[test]
    fn orientation_with_reused_scratch_matches_fresh() {
        let mut scratch = OrientScratch::new();
        // Differently-sized graphs back to back: the arena must resize
        // down as well as up without leaking marks between calls.
        for g in [
            complete_multigraph(5, 2),
            cycle_multigraph(3, 2),
            complete_multigraph(3, 4),
        ] {
            let fresh = euler_orientation(&g).unwrap();
            let reused = euler_orientation_with(&g, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "scratch reuse must not change the result");
            check_balanced(&g, &reused);
        }
    }

    #[test]
    fn orientation_of_multi_component_multigraph_with_loops() {
        let mut g = GraphBuilder::new()
            .nodes(6)
            .parallel_edges(0, 1, 2)
            .parallel_edges(2, 3, 4)
            .build();
        g.add_edge(4.into(), 4.into());
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }
}
