//! Euler circuits and balanced edge orientations.
//!
//! Step (2) of the paper's even-capacity algorithm (§IV) finds an Euler
//! cycle of the padded transfer graph and step (3) uses the traversal
//! direction of each edge to build a bipartite graph `H`. The essential
//! property delivered here is the *balanced orientation*: when every degree
//! is even, orienting each edge along a closed walk gives every node
//! in-degree = out-degree = `deg/2`.
//!
//! # Pairing cycles
//!
//! [`euler_orientation`] does not walk one global Hierholzer traversal
//! (whose stack makes the output depend on global visit order and pins the
//! whole walk to one core). Instead it derives the orientation from a
//! *pairing-cycle* decomposition that is a pure function of the CSR layout:
//!
//! * Every incidence **slot** (one entry of [`crate::CsrAdjacency`]) is
//!   paired with its neighbour inside its node's slot range: slot
//!   `base + i` pairs with `base + (i ^ 1)`. Degrees are even, so the
//!   pairing is perfect.
//! * `succ(s) = pair(twin(s))`, where `twin(s)` is the other slot of the
//!   same edge, is a permutation of the slots. Each `succ`-cycle is a
//!   closed walk that *enters* a node through one slot of a pair and
//!   *leaves* through the other.
//! * `twin` conjugates `succ` to its inverse, so the cycles come in
//!   mirror pairs traversing the same edges in opposite directions, and a
//!   parity argument shows no cycle is its own mirror. Labeling every slot
//!   with the minimum slot index of its cycle therefore gives each edge two
//!   *distinct* labels; the edge is oriented out of the smaller-labeled
//!   side. Exactly one cycle of each mirror pair wins every comparison it
//!   participates in, so the chosen cycles are closed directed walks and
//!   the orientation is balanced.
//!
//! Because the labels depend only on the CSR arrays, the orientation is
//! deterministic and — crucially — *parallelizable without changing the
//! answer*: [`euler_orientation_parallel`] lets multiple workers claim
//! vertex-disjoint chunks of each cycle concurrently, then stitches the
//! chunks with a deterministic merge. The output is byte-identical to the
//! serial path at every worker count; only the chunk/stitch statistics
//! ([`OrientStats`]) depend on scheduling.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crate::{CsrAdjacency, EdgeId, GraphError, Multigraph, NodeId};

/// Sentinel for "slot not yet labeled / claimed".
const UNSET: u32 = u32::MAX;

/// A balanced orientation of a multigraph.
///
/// Produced by [`euler_orientation`]. For each edge the orientation records
/// a `tail → head` direction such that at every node the number of outgoing
/// edges equals the number of incoming edges (self-loops count once as
/// outgoing and once as incoming at their node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EulerOrientation {
    tail: Vec<NodeId>,
    head: Vec<NodeId>,
}

impl EulerOrientation {
    /// The tail (origin) of edge `e` under this orientation.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn tail(&self, e: EdgeId) -> NodeId {
        self.tail[e.index()]
    }

    /// The head (target) of edge `e` under this orientation.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn head(&self, e: EdgeId) -> NodeId {
        self.head[e.index()]
    }

    /// Number of oriented edges.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Returns `true` if no edges were oriented.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Iterates over `(edge, tail, head)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.tail
            .iter()
            .zip(self.head.iter())
            .enumerate()
            .map(|(i, (&t, &h))| (EdgeId::new(i), t, h))
    }

    /// Out-degree of `v` under this orientation (loops count once).
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.tail.iter().filter(|&&t| t == v).count()
    }

    /// In-degree of `v` under this orientation (loops count once).
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.head.iter().filter(|&&h| h == v).count()
    }
}

/// Chunk/stitch statistics of one orientation run.
///
/// The orientation itself is identical at every worker count; these numbers
/// describe how the work was carved up. A single-worker run labels each
/// pairing cycle in one pass, so `chunks == cycles` and `stitches == 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrientStats {
    /// Cycle/ear chunks claimed during labeling (≥ `cycles`).
    pub chunks: u64,
    /// Chunk junctions merged by the stitch pass (`chunks - cycles`).
    pub stitches: u64,
    /// Pairing cycles of the slot permutation (a graph invariant).
    pub cycles: u64,
}

/// One claimed chunk of a pairing cycle: the slots from `start` (inclusive)
/// up to `bound` (exclusive) along `succ`. `bound` is always the start of
/// another chunk — or `start` itself when the chunk closed its whole cycle.
#[derive(Clone, Copy, Debug)]
struct ArcRec {
    start: u32,
    bound: u32,
    /// Minimum slot index among the chunk's slots (including `start`).
    min: u32,
}

/// Reusable buffers for the orientation and circuit routines.
///
/// The component-parallel and quota-recursion workers orient many padded
/// graphs in a row; keeping the CSR snapshot, slot permutation, and label
/// arrays alive across calls removes every per-call allocation except the
/// returned orientation itself. [`euler_orientation`] reuses a thread-local
/// arena, so ordinary callers get this for free.
#[derive(Debug, Default)]
pub struct OrientScratch {
    /// CSR snapshot used by the `Multigraph`-level entry points. Callers
    /// that build their own (possibly padded) CSR use
    /// [`orient_csr_parallel`] and leave this empty.
    csr: CsrAdjacency,
    /// Per edge: its two slot indices in the CSR entry array.
    edge_slot: Vec<[u32; 2]>,
    /// The pairing permutation `succ(s) = pair(twin(s))`.
    succ: Vec<u32>,
    /// Cycle-min label per slot; doubles as the claim word under parallel
    /// labeling (atomics are free on the serial path via `get_mut`).
    label: Vec<AtomicU32>,
    /// Claimed chunks, collected from all workers then stitched.
    arcs: Vec<ArcRec>,
    // --- classical Hierholzer buffers for `euler_circuits` ---
    used: Vec<bool>,
    cursor: Vec<usize>,
    node_stack: Vec<NodeId>,
    edge_stack: Vec<EdgeId>,
    circuit: Vec<EdgeId>,
}

impl OrientScratch {
    /// Creates an empty arena (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        OrientScratch::default()
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<OrientScratch> =
        std::cell::RefCell::new(OrientScratch::new());
}

/// Computes the canonical balanced orientation of `g`.
///
/// Every node must have even degree (self-loops counting twice). Isolated
/// nodes are fine. Components are handled independently, so the graph need
/// not be connected. The result is a deterministic function of the graph
/// (see the module docs), identical to what
/// [`euler_orientation_parallel`] produces at any worker count.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
///
/// # Example
///
/// ```
/// use dmig_graph::{builder::complete_multigraph, euler::euler_orientation};
///
/// // K3 with 2 parallel edges: every degree is 4.
/// let g = complete_multigraph(3, 2);
/// let orient = euler_orientation(&g)?;
/// for v in g.nodes() {
///     assert_eq!(orient.out_degree(v), 2);
///     assert_eq!(orient.in_degree(v), 2);
/// }
/// # Ok::<(), dmig_graph::GraphError>(())
/// ```
pub fn euler_orientation(g: &Multigraph) -> Result<EulerOrientation, GraphError> {
    SCRATCH.with(|scratch| euler_orientation_with(g, &mut scratch.borrow_mut()))
}

/// [`euler_orientation`] with caller-owned scratch buffers.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
pub fn euler_orientation_with(
    g: &Multigraph,
    scratch: &mut OrientScratch,
) -> Result<EulerOrientation, GraphError> {
    euler_orientation_parallel(g, 1, scratch).map(|(o, _)| o)
}

/// Chunked orientation of `g` using up to `workers` threads (including the
/// caller), byte-identical to [`euler_orientation`] at every worker count.
///
/// `workers <= 1` runs the serial labeling pass on the calling thread.
/// Callers are expected to gate `workers` on problem size themselves (the
/// solver recruits extra workers only for graphs big enough to amortize
/// thread spawns); this function honors whatever it is given so that small
/// instances can still exercise the parallel machinery in tests.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
pub fn euler_orientation_parallel(
    g: &Multigraph,
    workers: usize,
    scratch: &mut OrientScratch,
) -> Result<(EulerOrientation, OrientStats), GraphError> {
    scratch.csr.rebuild_from(g);
    let OrientScratch {
        csr,
        edge_slot,
        succ,
        label,
        arcs,
        ..
    } = scratch;
    orient_split(csr, workers, edge_slot, succ, label, arcs)
}

/// Chunked orientation of a caller-built CSR snapshot.
///
/// This is the zero-copy entry point used by `solve_even`: the caller
/// overlays padding edges with [`CsrAdjacency::rebuild_padded`] and orients
/// the padded incidence structure directly, never materialising the padded
/// multigraph. Otherwise identical to [`euler_orientation_parallel`].
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] naming the first node with odd degree.
pub fn orient_csr_parallel(
    csr: &CsrAdjacency,
    workers: usize,
    scratch: &mut OrientScratch,
) -> Result<(EulerOrientation, OrientStats), GraphError> {
    let OrientScratch {
        edge_slot,
        succ,
        label,
        arcs,
        ..
    } = scratch;
    orient_split(csr, workers, edge_slot, succ, label, arcs)
}

fn orient_split(
    csr: &CsrAdjacency,
    workers: usize,
    edge_slot: &mut Vec<[u32; 2]>,
    succ: &mut Vec<u32>,
    label: &mut Vec<AtomicU32>,
    arcs: &mut Vec<ArcRec>,
) -> Result<(EulerOrientation, OrientStats), GraphError> {
    let offsets = csr.offsets();
    for v in 0..csr.num_nodes() {
        let d = offsets[v + 1] - offsets[v];
        if d % 2 != 0 {
            return Err(GraphError::OddDegree {
                node: NodeId::new(v),
                degree: d,
            });
        }
    }

    let slots = csr.entries().len();
    if slots == 0 {
        return Ok((
            EulerOrientation {
                tail: Vec::new(),
                head: Vec::new(),
            },
            OrientStats::default(),
        ));
    }
    assert!(
        (slots as u64) < u64::from(UNSET),
        "slot index must fit in u32 (m < 2^31 edges)"
    );

    build_succ(csr, edge_slot, succ);
    label.clear();
    label.resize_with(slots, || AtomicU32::new(UNSET));

    let stats = if workers <= 1 {
        label_serial(succ, label)
    } else {
        label_parallel(succ, label, arcs, workers)
    };
    Ok((orient_edges(csr, edge_slot, label, workers), stats))
}

/// Builds `edge_slot` and the pairing permutation `succ` from the CSR.
///
/// Both passes are branch-light linear scans; the permutation is written
/// through the twin (`succ[twin(s)] = pair(s)`) so each slot's write needs
/// only its *own* node base, never the twin's.
fn build_succ(csr: &CsrAdjacency, edge_slot: &mut Vec<[u32; 2]>, succ: &mut Vec<u32>) {
    let entries = csr.entries();
    let offsets = csr.offsets();
    let slots = entries.len();

    edge_slot.clear();
    edge_slot.resize(csr.num_edges(), [UNSET; 2]);
    for (s, &(e, _)) in entries.iter().enumerate() {
        let rec = &mut edge_slot[e.index()];
        // First occurrence fills rec[0], second rec[1] — branchlessly.
        let which = usize::from(rec[0] != UNSET);
        rec[which] = s as u32;
    }

    succ.clear();
    succ.resize(slots, 0);
    for v in 0..offsets.len() - 1 {
        let base = offsets[v];
        for s in base..offsets[v + 1] {
            let pair = (base + ((s - base) ^ 1)) as u32;
            let [a, b] = edge_slot[entries[s].0.index()];
            let twin = if a == s as u32 { b } else { a };
            succ[twin as usize] = pair;
        }
    }
}

/// Labels every slot with the minimum slot of its `succ`-cycle, serially.
///
/// Scanning starts in ascending order, so the first unvisited slot of a
/// cycle *is* its minimum: one walk per cycle suffices.
fn label_serial(succ: &[u32], label: &mut [AtomicU32]) -> OrientStats {
    let mut cycles = 0u64;
    for s in 0..label.len() as u32 {
        if *label[s as usize].get_mut() != UNSET {
            continue;
        }
        cycles += 1;
        let mut cur = s;
        loop {
            *label[cur as usize].get_mut() = s;
            cur = succ[cur as usize];
            if cur == s {
                break;
            }
        }
    }
    OrientStats {
        chunks: cycles,
        stitches: 0,
        cycles,
    }
}

/// Labels every slot with the minimum slot of its `succ`-cycle using
/// `workers` threads, producing exactly the same labels as
/// [`label_serial`].
///
/// Workers race to claim start slots (block-strided atomic cursor), then
/// claim-walk forward along `succ` until they close their own cycle or run
/// into another chunk. A chunk only ever grows forward from its start, so
/// every collision lands on another chunk's *start* slot — which makes the
/// serial stitch a simple start → bound chain walk. The race decides who
/// claims which chunk, never the stitched result: the final label is the
/// true cycle minimum regardless of partitioning.
fn label_parallel(
    succ: &[u32],
    label: &mut [AtomicU32],
    arcs: &mut Vec<ArcRec>,
    workers: usize,
) -> OrientStats {
    let slots = succ.len();
    arcs.clear();
    let label_shared: &[AtomicU32] = label;

    // Small blocks keep all workers busy on modest graphs (and exercise the
    // stitch path in tests); the per-block fetch_add is noise either way.
    let block = (slots / (workers * 8)).clamp(32, 1 << 16);
    let nblocks = slots.div_ceil(block);
    let next_block = AtomicUsize::new(0);

    // Claim-walk. Claims use the label word itself (claimer's start slot as
    // the marker, overwritten with the real label by the fill pass below).
    // Relaxed suffices: the CAS only arbitrates traversal ownership, and the
    // scope join orders everything before the stitch reads `arcs`.
    let claim = |out: &mut Vec<ArcRec>| loop {
        let b = next_block.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let lo = (b * block) as u32;
        let hi = ((b * block + block).min(slots)) as u32;
        for s in lo..hi {
            if label_shared[s as usize].load(Ordering::Relaxed) != UNSET {
                continue;
            }
            if label_shared[s as usize]
                .compare_exchange(UNSET, s, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let mut min = s;
            let mut cur = succ[s as usize];
            loop {
                if cur == s {
                    out.push(ArcRec {
                        start: s,
                        bound: s,
                        min,
                    });
                    break;
                }
                match label_shared[cur as usize].compare_exchange(
                    UNSET,
                    s,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        min = min.min(cur);
                        cur = succ[cur as usize];
                    }
                    Err(_) => {
                        out.push(ArcRec {
                            start: s,
                            bound: cur,
                            min,
                        });
                        break;
                    }
                }
            }
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    claim(&mut mine);
                    mine
                })
            })
            .collect();
        let mut mine = Vec::new();
        claim(&mut mine);
        arcs.append(&mut mine);
        for h in handles {
            arcs.extend(h.join().expect("claim worker panicked"));
        }
    });

    // Deterministic stitch: chain chunks through their bound pointers into
    // whole cycles and resolve each cycle's true minimum. Sorting by start
    // makes the bound lookups binary searches; the outcome is independent
    // of how the race carved the cycles up.
    arcs.sort_unstable_by_key(|a| a.start);
    let find = |start: u32| {
        arcs.binary_search_by_key(&start, |a| a.start)
            .expect("chunk bound must be another chunk's start")
    };
    let mut cycle_min = vec![UNSET; arcs.len()];
    let mut cycles = 0u64;
    for i in 0..arcs.len() {
        if cycle_min[i] != UNSET {
            continue;
        }
        cycles += 1;
        let mut min = arcs[i].min;
        let mut j = i;
        loop {
            let bound = arcs[j].bound;
            if bound == arcs[i].start {
                break;
            }
            j = find(bound);
            min = min.min(arcs[j].min);
        }
        let mut j = i;
        loop {
            cycle_min[j] = min;
            let bound = arcs[j].bound;
            if bound == arcs[i].start {
                break;
            }
            j = find(bound);
        }
    }

    // Parallel label fill: each chunk re-walks its claimed slots writing the
    // resolved cycle minimum. Chunks partition the slots, so writes are
    // disjoint.
    let arcs_shared: &[ArcRec] = arcs;
    let cycle_min_shared: &[u32] = &cycle_min;
    let next_arc = AtomicUsize::new(0);
    let fill = || loop {
        let i = next_arc.fetch_add(1, Ordering::Relaxed);
        if i >= arcs_shared.len() {
            break;
        }
        let arc = arcs_shared[i];
        let min = cycle_min_shared[i];
        let mut cur = arc.start;
        loop {
            label_shared[cur as usize].store(min, Ordering::Relaxed);
            cur = succ[cur as usize];
            if cur == arc.bound {
                break;
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(fill);
        }
        fill();
    });

    OrientStats {
        chunks: arcs.len() as u64,
        stitches: arcs.len() as u64 - cycles,
        cycles,
    }
}

/// Emits the per-edge orientation from the cycle labels: each edge exits
/// through its smaller-labeled slot (mirror cycles guarantee the labels of
/// an edge's two slots always differ).
fn orient_edges(
    csr: &CsrAdjacency,
    edge_slot: &[[u32; 2]],
    label: &[AtomicU32],
    workers: usize,
) -> EulerOrientation {
    let entries = csr.entries();
    let m = csr.num_edges();
    let mut tail = vec![NodeId::new(0); m];
    let mut head = vec![NodeId::new(0); m];

    let fill = |lo: usize, tail: &mut [NodeId], head: &mut [NodeId]| {
        for k in 0..tail.len() {
            let [a, b] = edge_slot[lo + k];
            let la = label[a as usize].load(Ordering::Relaxed);
            let lb = label[b as usize].load(Ordering::Relaxed);
            let (exit, enter) = if la < lb { (a, b) } else { (b, a) };
            // entries[s] stores the far endpoint: the exit slot names the
            // head it points at, its twin names the node it exits from.
            tail[k] = entries[enter as usize].1;
            head[k] = entries[exit as usize].1;
        }
    };
    if workers <= 1 || m < 2 {
        fill(0, &mut tail, &mut head);
    } else {
        let chunk = m.div_ceil(workers);
        let fill = &fill;
        std::thread::scope(|scope| {
            let mut ranges = tail
                .chunks_mut(chunk)
                .zip(head.chunks_mut(chunk))
                .enumerate();
            let first = ranges.next();
            for (i, (t, h)) in ranges {
                scope.spawn(move || fill(i * chunk, t, h));
            }
            if let Some((_, (t, h))) = first {
                fill(0, t, h);
            }
        });
    }
    EulerOrientation { tail, head }
}

/// Computes an explicit Euler circuit for each connected component with
/// edges, as sequences of edge ids in traversal order.
///
/// This is the classical output of Hierholzer's algorithm; the scheduling
/// pipeline itself only needs [`euler_orientation`], but explicit circuits
/// are useful for debugging and for tests that check circuit validity.
/// The traversal state (CSR snapshot, marks, cursors, stacks) lives in the
/// same thread-local arena the orientation uses, so back-to-back calls
/// allocate nothing beyond the returned circuits themselves.
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] if any node has odd degree.
pub fn euler_circuits(g: &Multigraph) -> Result<Vec<Vec<EdgeId>>, GraphError> {
    for v in g.nodes() {
        let d = g.degree(v);
        if d % 2 != 0 {
            return Err(GraphError::OddDegree { node: v, degree: d });
        }
    }

    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.csr.rebuild_from(g);
        let OrientScratch {
            csr,
            used,
            cursor,
            node_stack,
            edge_stack,
            circuit,
            ..
        } = scratch;
        used.clear();
        used.resize(g.num_edges(), false);
        cursor.clear();
        cursor.resize(g.num_nodes(), 0);

        let mut circuits = Vec::new();
        for start in g.nodes() {
            // Find an unused incident edge to seed a circuit.
            let has_unused = csr.incident(start).iter().any(|&(e, _)| !used[e.index()]);
            if !has_unused {
                continue;
            }
            // Hierholzer with an explicit edge stack: on backtrack, the
            // popped edges form the circuit in reverse.
            node_stack.clear();
            edge_stack.clear();
            circuit.clear();
            node_stack.push(start);
            while let Some(&v) = node_stack.last() {
                let vi = v.index();
                let adj = csr.incident(v);
                let mut advanced = false;
                while cursor[vi] < adj.len() {
                    let (e, w) = adj[cursor[vi]];
                    cursor[vi] += 1;
                    if used[e.index()] {
                        continue;
                    }
                    used[e.index()] = true;
                    node_stack.push(w);
                    edge_stack.push(e);
                    advanced = true;
                    break;
                }
                if !advanced {
                    node_stack.pop();
                    if let Some(e) = edge_stack.pop() {
                        circuit.push(e);
                    }
                }
            }
            circuit.reverse();
            if !circuit.is_empty() {
                // One exact-size allocation per circuit: the returned value.
                circuits.push(circuit.as_slice().to_vec());
            }
        }
        Ok(circuits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_multigraph, cycle_multigraph, GraphBuilder};

    fn check_balanced(g: &Multigraph, o: &EulerOrientation) {
        assert_eq!(o.len(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(o.out_degree(v), g.degree(v) / 2, "out-degree at {v}");
            assert_eq!(o.in_degree(v), g.degree(v) / 2, "in-degree at {v}");
        }
        for (e, t, h) in o.iter() {
            let ep = g.endpoints(e);
            assert!(
                (ep.u == t && ep.v == h) || (ep.u == h && ep.v == t),
                "orientation must match endpoints"
            );
        }
    }

    #[test]
    fn empty_graph_orients_trivially() {
        let g = Multigraph::with_nodes(3);
        let o = euler_orientation(&g).unwrap();
        assert!(o.is_empty());
    }

    #[test]
    fn odd_degree_rejected() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let err = euler_orientation(&g).unwrap_err();
        assert!(matches!(err, GraphError::OddDegree { degree: 1, .. }));
        assert!(euler_circuits(&g).is_err());
    }

    #[test]
    fn cycle_is_balanced() {
        let g = cycle_multigraph(5, 1);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn complete_graph_with_even_degrees() {
        // K5 has all degrees 4 (even).
        let g = complete_multigraph(5, 1);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn parallel_edges_balanced() {
        let g = complete_multigraph(3, 4);
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn self_loops_balanced() {
        let mut g = cycle_multigraph(3, 2);
        g.add_edge(1.into(), 1.into());
        g.add_edge(1.into(), 1.into());
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn disconnected_components_each_balanced() {
        // Two disjoint triangles plus isolated nodes.
        let g = GraphBuilder::new()
            .nodes(8)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(4, 5)
            .edge(5, 6)
            .edge(6, 4)
            .build();
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn circuits_cover_all_edges_and_are_walks() {
        let g = complete_multigraph(5, 2);
        let circuits = euler_circuits(&g).unwrap();
        let total: usize = circuits.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_edges());
        // Each circuit must be a closed walk: consecutive edges share a node.
        for circuit in &circuits {
            let first = g.endpoints(circuit[0]);
            // Choose the traversal direction of the first edge so that the
            // walk can continue; try both.
            let ok = [first.u, first.v].iter().any(|&start| {
                let mut at_inner = start;
                for &e in circuit {
                    let ep = g.endpoints(e);
                    if ep.u == at_inner {
                        at_inner = ep.v;
                    } else if ep.v == at_inner {
                        at_inner = ep.u;
                    } else {
                        return false;
                    }
                }
                at_inner == start
            });
            assert!(ok, "circuit is not a closed walk");
        }
    }

    #[test]
    fn circuits_distinct_edges() {
        let g = complete_multigraph(3, 6);
        let circuits = euler_circuits(&g).unwrap();
        let mut seen = std::collections::HashSet::new();
        for c in &circuits {
            for &e in c {
                assert!(seen.insert(e), "edge repeated across circuits");
            }
        }
    }

    #[test]
    fn orientation_with_reused_scratch_matches_fresh() {
        let mut scratch = OrientScratch::new();
        // Differently-sized graphs back to back: the arena must resize
        // down as well as up without leaking marks between calls.
        for g in [
            complete_multigraph(5, 2),
            cycle_multigraph(3, 2),
            complete_multigraph(3, 4),
        ] {
            let fresh = euler_orientation(&g).unwrap();
            let reused = euler_orientation_with(&g, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "scratch reuse must not change the result");
            check_balanced(&g, &reused);
        }
    }

    #[test]
    fn orientation_of_multi_component_multigraph_with_loops() {
        let mut g = GraphBuilder::new()
            .nodes(6)
            .parallel_edges(0, 1, 2)
            .parallel_edges(2, 3, 4)
            .build();
        g.add_edge(4.into(), 4.into());
        let o = euler_orientation(&g).unwrap();
        check_balanced(&g, &o);
    }

    #[test]
    fn parallel_matches_serial_at_every_worker_count() {
        let mut g = complete_multigraph(7, 2); // degrees 12
        g.add_edge(2.into(), 2.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(0.into(), 2.into());
        let serial = euler_orientation(&g).unwrap();
        check_balanced(&g, &serial);
        let mut scratch = OrientScratch::new();
        for workers in 1..=8 {
            let (par, stats) = euler_orientation_parallel(&g, workers, &mut scratch).unwrap();
            assert_eq!(serial, par, "workers={workers} must not change the result");
            assert_eq!(stats.stitches, stats.chunks - stats.cycles);
            if workers == 1 {
                assert_eq!(stats.stitches, 0, "serial labeling never stitches");
            }
        }
    }

    #[test]
    fn padded_csr_orientation_matches_materialized_padding() {
        use crate::Endpoints;
        let g = cycle_multigraph(6, 1);
        let pad = vec![
            Endpoints {
                u: NodeId::new(0),
                v: NodeId::new(0),
            },
            Endpoints {
                u: NodeId::new(3),
                v: NodeId::new(5),
            },
            Endpoints {
                u: NodeId::new(3),
                v: NodeId::new(5),
            },
        ];
        let mut csr = CsrAdjacency::default();
        csr.rebuild_padded(&g, &pad);
        let mut materialized = g.clone();
        for ep in &pad {
            materialized.add_edge(ep.u, ep.v);
        }
        let expect = euler_orientation(&materialized).unwrap();
        let mut scratch = OrientScratch::new();
        for workers in 1..=4 {
            let (got, _) = orient_csr_parallel(&csr, workers, &mut scratch).unwrap();
            assert_eq!(expect, got, "overlay CSR must orient like the clone");
        }
    }

    #[test]
    fn orientation_is_deterministic_across_calls() {
        let g = complete_multigraph(6, 2); // degrees 10
        let a = euler_orientation(&g).unwrap();
        let b = euler_orientation(&g).unwrap();
        assert_eq!(a, b);
    }
}
