//! Multigraph substrate for heterogeneous data-migration scheduling.
//!
//! This crate provides the combinatorial foundation used throughout the
//! `dmig` workspace, a reproduction of *"Data Migration in Heterogeneous
//! Storage Systems"* (Kari, Kim, Russell — ICDCS 2011):
//!
//! * [`Multigraph`] — an undirected multigraph with parallel edges and
//!   self-loops, the paper's *transfer graph* (each node is a disk, each
//!   edge a unit-size data item to move between two disks),
//! * [`euler`] — Euler circuits and balanced edge orientations (a
//!   deterministic, parallelizable pairing-cycle decomposition), the
//!   engine behind the paper's optimal even-capacity schedule (§IV,
//!   steps 2–3),
//! * [`components`] — connected components,
//! * [`bipartite`] — bipartition detection for the bipartite special case,
//! * [`io`] — a plain-text edge-list format plus DOT export for debugging.
//!
//! # Example
//!
//! ```
//! use dmig_graph::Multigraph;
//!
//! // The triangle instance of the paper's Fig. 2 with M = 2 parallel
//! // edges between every pair of disks.
//! let mut g = Multigraph::with_nodes(3);
//! for _ in 0..2 {
//!     g.add_edge(0.into(), 1.into());
//!     g.add_edge(1.into(), 2.into());
//!     g.add_edge(0.into(), 2.into());
//! }
//! assert_eq!(g.num_edges(), 6);
//! assert_eq!(g.degree(0.into()), 4);
//! assert_eq!(g.max_degree(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod euler;
pub mod ids;
pub mod io;
pub mod multigraph;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrAdjacency;
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use multigraph::{Endpoints, Multigraph, NodeMarks};
