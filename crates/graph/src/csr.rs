//! Flat CSR (compressed sparse row) snapshot of a multigraph's incidence
//! structure.
//!
//! [`Multigraph`] keeps one heap-allocated incidence list per node, which is
//! the right shape for incremental construction but makes traversal-heavy
//! algorithms (Euler orientation, component DFS, alternating walks) chase a
//! pointer per node. A [`CsrAdjacency`] packs every incidence slot into two
//! contiguous arrays — `offsets` and `(edge, neighbor)` entries — so inner
//! loops walk cache-friendly slices and the `other(v)` endpoint lookup is
//! precomputed.
//!
//! The snapshot is immutable once built, but the *buffers* are reusable:
//! [`CsrAdjacency::rebuild_from`] refills an existing snapshot in place, and
//! [`CsrAdjacency::rebuild_padded`] overlays extra padding edges on top of a
//! graph without materialising the padded multigraph at all. `solve_even`
//! uses the overlay to avoid cloning the whole transfer graph per solve.
//! Build once per algorithm run with [`Multigraph::to_csr`] (or a rebuild)
//! after the graph has stopped changing.

use crate::{EdgeId, Endpoints, Multigraph, NodeId};

/// Immutable flat incidence index of a [`Multigraph`].
///
/// For each node `v`, [`CsrAdjacency::incident`] yields `(e, w)` pairs where
/// `e` is an incident edge and `w` its far endpoint, in the same insertion
/// order as [`Multigraph::incident_edges`]. A self-loop at `v` appears twice
/// with `w == v`, matching the degree convention (loops count twice).
///
/// # Example
///
/// ```
/// use dmig_graph::{Multigraph, NodeId};
///
/// let mut g = Multigraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 2.into());
/// let csr = g.to_csr();
/// let far: Vec<NodeId> = csr.incident(0.into()).iter().map(|&(_, w)| w).collect();
/// assert_eq!(far, vec![NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `entries` for node `v`.
    offsets: Vec<usize>,
    /// `(incident edge, far endpoint)` per incidence slot.
    entries: Vec<(EdgeId, NodeId)>,
}

impl CsrAdjacency {
    /// Builds the snapshot by flattening `g`'s incidence lists.
    #[must_use]
    pub fn from_graph(g: &Multigraph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::with_capacity(g.degree_sum());
        for v in g.nodes() {
            for &e in g.incident_edges(v) {
                entries.push((e, g.endpoints(e).other(v)));
            }
            offsets.push(entries.len());
        }
        CsrAdjacency { offsets, entries }
    }

    /// Number of nodes covered.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of `v` (self-loops count twice), as in the source graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The `(edge, far endpoint)` incidence slots of `v`, in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn incident(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.entries[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The raw offset array: `offsets()[v]..offsets()[v + 1]` indexes
    /// [`CsrAdjacency::entries`] for node `v`. Length is `num_nodes() + 1`.
    #[inline]
    #[must_use]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw incidence slots: `(edge, far endpoint)` per slot, all nodes
    /// concatenated. Length is the degree sum (`2 · num_edges()`).
    #[inline]
    #[must_use]
    pub fn entries(&self) -> &[(EdgeId, NodeId)] {
        &self.entries
    }

    /// Number of distinct edges covered (each edge occupies two slots;
    /// a self-loop contributes both of its slots at one node).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.entries.len() / 2
    }

    /// Refills this snapshot from `g`, reusing the existing buffers.
    ///
    /// Equivalent to `*self = g.to_csr()` without the two allocations.
    pub fn rebuild_from(&mut self, g: &Multigraph) {
        self.rebuild_padded(g, &[]);
    }

    /// Refills this snapshot as if `pad` had been appended to `g`'s edge
    /// list, without materialising the padded multigraph.
    ///
    /// Padding edge `pad[i]` gets id `g.num_edges() + i`. The result is
    /// bit-identical to cloning `g`, `add_edge`-ing every pad endpoint pair
    /// in order, and calling [`Multigraph::to_csr`] on the clone: the fill
    /// scatters slots in ascending edge-id order, which is exactly the
    /// incidence insertion order `add_edge` produces.
    pub fn rebuild_padded(&mut self, g: &Multigraph, pad: &[Endpoints]) {
        let n = g.num_nodes();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        // Degree histogram shifted by one, so the prefix sum lands directly
        // in place: offsets[v + 1] accumulates deg(v).
        for v in 0..n {
            self.offsets[v + 1] = g.degree(NodeId::new(v));
        }
        for ep in pad {
            // A self-loop hits the same counter twice, matching the
            // loops-count-twice degree convention.
            self.offsets[ep.u.index() + 1] += 1;
            self.offsets[ep.v.index() + 1] += 1;
        }
        for v in 0..n {
            self.offsets[v + 1] += self.offsets[v];
        }
        let total = self.offsets[n];
        self.entries.clear();
        self.entries.resize(total, (EdgeId::new(0), NodeId::new(0)));

        // Scatter pass, using offsets[v] as node v's write cursor.
        let base_edges = g.endpoints_slice();
        let mut scatter = |e: usize, ep: &Endpoints| {
            let su = self.offsets[ep.u.index()];
            self.offsets[ep.u.index()] += 1;
            self.entries[su] = (EdgeId::new(e), ep.v);
            let sv = self.offsets[ep.v.index()];
            self.offsets[ep.v.index()] += 1;
            self.entries[sv] = (EdgeId::new(e), ep.u);
        };
        for (e, ep) in base_edges.iter().enumerate() {
            scatter(e, ep);
        }
        for (i, ep) in pad.iter().enumerate() {
            scatter(base_edges.len() + i, ep);
        }

        // The cursors ended exactly where the next node starts: shift right
        // by one to restore the offset invariant.
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        self.offsets[0] = 0;
    }
}

impl Default for CsrAdjacency {
    /// An empty snapshot (zero nodes), ready for [`CsrAdjacency::rebuild_from`].
    fn default() -> Self {
        CsrAdjacency {
            offsets: vec![0],
            entries: Vec::new(),
        }
    }
}

impl Multigraph {
    /// Builds a flat [`CsrAdjacency`] snapshot of the current incidence
    /// structure (see the [`crate::csr`] module docs).
    #[must_use]
    pub fn to_csr(&self) -> CsrAdjacency {
        CsrAdjacency::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::complete_multigraph;

    #[test]
    fn snapshot_matches_incidence_lists() {
        let mut g = complete_multigraph(4, 2);
        g.add_edge(1.into(), 1.into()); // self-loop: two slots at node 1
        let csr = g.to_csr();
        assert_eq!(csr.num_nodes(), g.num_nodes());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let slots = csr.incident(v);
            let expected: Vec<(EdgeId, NodeId)> = g
                .incident_edges(v)
                .iter()
                .map(|&e| (e, g.endpoints(e).other(v)))
                .collect();
            assert_eq!(slots, expected.as_slice(), "mismatch at {v}");
        }
    }

    #[test]
    fn rebuild_matches_from_graph() {
        let mut csr = CsrAdjacency::default();
        assert_eq!(csr.num_nodes(), 0);
        for g in [
            complete_multigraph(4, 2),
            complete_multigraph(3, 1),
            Multigraph::with_nodes(5),
        ] {
            csr.rebuild_from(&g);
            assert_eq!(csr, g.to_csr(), "rebuild must be indistinguishable");
        }
    }

    #[test]
    fn padded_overlay_matches_materialized_padding() {
        let mut g = complete_multigraph(4, 2);
        g.add_edge(2.into(), 2.into());
        let pad = vec![
            Endpoints {
                u: NodeId::new(0),
                v: NodeId::new(0),
            },
            Endpoints {
                u: NodeId::new(1),
                v: NodeId::new(3),
            },
            Endpoints {
                u: NodeId::new(3),
                v: NodeId::new(3),
            },
        ];
        let mut csr = CsrAdjacency::default();
        csr.rebuild_padded(&g, &pad);

        let mut materialized = g.clone();
        for ep in &pad {
            materialized.add_edge(ep.u, ep.v);
        }
        assert_eq!(csr, materialized.to_csr(), "overlay must match the clone");
        assert_eq!(csr.num_edges(), g.num_edges() + pad.len());
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let csr = Multigraph::with_nodes(3).to_csr();
        assert_eq!(csr.num_nodes(), 3);
        for v in 0..3usize {
            assert!(csr.incident(NodeId::new(v)).is_empty());
        }
        assert_eq!(Multigraph::new().to_csr().num_nodes(), 0);
    }
}
