//! Flat CSR (compressed sparse row) snapshot of a multigraph's incidence
//! structure.
//!
//! [`Multigraph`] keeps one heap-allocated incidence list per node, which is
//! the right shape for incremental construction but makes traversal-heavy
//! algorithms (Euler orientation, component DFS, alternating walks) chase a
//! pointer per node. A [`CsrAdjacency`] packs every incidence slot into two
//! contiguous arrays — `offsets` and `(edge, neighbor)` entries — so inner
//! loops walk cache-friendly slices and the `other(v)` endpoint lookup is
//! precomputed.
//!
//! The snapshot is immutable: build it once per algorithm run with
//! [`Multigraph::to_csr`] after the graph has stopped changing.

use crate::{EdgeId, Multigraph, NodeId};

/// Immutable flat incidence index of a [`Multigraph`].
///
/// For each node `v`, [`CsrAdjacency::incident`] yields `(e, w)` pairs where
/// `e` is an incident edge and `w` its far endpoint, in the same insertion
/// order as [`Multigraph::incident_edges`]. A self-loop at `v` appears twice
/// with `w == v`, matching the degree convention (loops count twice).
///
/// # Example
///
/// ```
/// use dmig_graph::{Multigraph, NodeId};
///
/// let mut g = Multigraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 2.into());
/// let csr = g.to_csr();
/// let far: Vec<NodeId> = csr.incident(0.into()).iter().map(|&(_, w)| w).collect();
/// assert_eq!(far, vec![NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `entries` for node `v`.
    offsets: Vec<usize>,
    /// `(incident edge, far endpoint)` per incidence slot.
    entries: Vec<(EdgeId, NodeId)>,
}

impl CsrAdjacency {
    /// Builds the snapshot by flattening `g`'s incidence lists.
    #[must_use]
    pub fn from_graph(g: &Multigraph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::with_capacity(g.degree_sum());
        for v in g.nodes() {
            for &e in g.incident_edges(v) {
                entries.push((e, g.endpoints(e).other(v)));
            }
            offsets.push(entries.len());
        }
        CsrAdjacency { offsets, entries }
    }

    /// Number of nodes covered.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of `v` (self-loops count twice), as in the source graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The `(edge, far endpoint)` incidence slots of `v`, in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn incident(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.entries[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }
}

impl Multigraph {
    /// Builds a flat [`CsrAdjacency`] snapshot of the current incidence
    /// structure (see the [`crate::csr`] module docs).
    #[must_use]
    pub fn to_csr(&self) -> CsrAdjacency {
        CsrAdjacency::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::complete_multigraph;

    #[test]
    fn snapshot_matches_incidence_lists() {
        let mut g = complete_multigraph(4, 2);
        g.add_edge(1.into(), 1.into()); // self-loop: two slots at node 1
        let csr = g.to_csr();
        assert_eq!(csr.num_nodes(), g.num_nodes());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let slots = csr.incident(v);
            let expected: Vec<(EdgeId, NodeId)> = g
                .incident_edges(v)
                .iter()
                .map(|&e| (e, g.endpoints(e).other(v)))
                .collect();
            assert_eq!(slots, expected.as_slice(), "mismatch at {v}");
        }
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let csr = Multigraph::with_nodes(3).to_csr();
        assert_eq!(csr.num_nodes(), 3);
        for v in 0..3usize {
            assert!(csr.incident(NodeId::new(v)).is_empty());
        }
        assert_eq!(Multigraph::new().to_csr().num_nodes(), 0);
    }
}
