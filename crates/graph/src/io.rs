//! Plain-text instance formats and DOT export.
//!
//! The edge-list format is a line-oriented text format shared by the CLI,
//! the workload generators, and the experiment harnesses:
//!
//! ```text
//! # comment
//! nodes 4
//! edge 0 1
//! edge 0 1
//! edge 2 3
//! ```
//!
//! `nodes N` is optional (the node count is otherwise inferred from the
//! largest endpoint); `edge U V` lines may repeat for parallel edges.

use std::fmt::Write as _;

use crate::{GraphError, Multigraph, NodeId};

/// Parses a multigraph from the edge-list text format.
///
/// Blank lines and lines starting with `#` are ignored. Directives:
/// `nodes N` (pre-allocate at least `N` nodes) and `edge U V`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and
/// [`GraphError::NodeOutOfRange`] if an edge references a node beyond a
/// declared `nodes` count that it would otherwise extend implicitly —
/// implicit extension only happens when no `nodes` directive was given.
///
/// # Example
///
/// ```
/// use dmig_graph::io::parse_edge_list;
/// let g = parse_edge_list("nodes 3\nedge 0 1\nedge 1 2\n")?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), dmig_graph::GraphError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Multigraph, GraphError> {
    let mut declared_nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        let parse_usize = |tok: Option<&str>, what: &str| -> Result<usize, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<usize>()
            .map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid {what}"),
            })
        };
        match keyword {
            "nodes" => {
                let n = parse_usize(parts.next(), "node count")?;
                declared_nodes = Some(n);
            }
            "edge" => {
                let u = parse_usize(parts.next(), "edge endpoint")?;
                let v = parse_usize(parts.next(), "edge endpoint")?;
                edges.push((u, v));
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unknown directive `{other}`"),
                });
            }
        }
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "trailing tokens".to_string(),
            });
        }
    }

    let inferred = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = match declared_nodes {
        Some(n) => n,
        None => inferred,
    };
    let mut g = Multigraph::with_nodes(n);
    for (u, v) in edges {
        g.try_add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    Ok(g)
}

/// Serializes a multigraph to the edge-list text format accepted by
/// [`parse_edge_list`].
#[must_use]
pub fn to_edge_list(g: &Multigraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.num_nodes());
    for (_, ep) in g.edges() {
        let _ = writeln!(out, "edge {} {}", ep.u.index(), ep.v.index());
    }
    out
}

/// Renders the multigraph in Graphviz DOT format for visual inspection.
///
/// Parallel edges are drawn individually; self-loops render as loops.
#[must_use]
pub fn to_dot(g: &Multigraph) -> String {
    let mut out = String::from("graph transfer {\n");
    for v in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", v.index(), v);
    }
    for (_, ep) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", ep.u.index(), ep.v.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn roundtrip() {
        let g = GraphBuilder::new()
            .nodes(5)
            .parallel_edges(0, 1, 3)
            .edge(2, 3)
            .build();
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parse_infers_node_count() {
        let g = parse_edge_list("edge 0 4\n").unwrap();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let g = parse_edge_list("# header\n\nnodes 2\n  # indented comment\nedge 0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_rejects_unknown_directive() {
        let err = parse_edge_list("vertex 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_missing_endpoint() {
        let err = parse_edge_list("edge 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let err = parse_edge_list("edge a b\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_trailing_tokens() {
        let err = parse_edge_list("edge 0 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_edge_beyond_declared_nodes() {
        let err = parse_edge_list("nodes 2\nedge 0 5\n").unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn parse_reports_correct_line_numbers() {
        let err = parse_edge_list("nodes 3\nedge 0 1\nedge x 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn dot_contains_all_edges() {
        let g = GraphBuilder::new().parallel_edges(0, 1, 2).build();
        let dot = to_dot(&g);
        assert_eq!(dot.matches("0 -- 1;").count(), 2);
        assert!(dot.starts_with("graph transfer {"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_nodes(), 0);
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
    }
}
