//! Connected components of a multigraph.

use crate::{Multigraph, NodeId};

/// A partition of a graph's nodes into connected components.
///
/// Produced by [`connected_components`]. Isolated nodes form singleton
/// components. Component ids are dense (`0..count`) and assigned in order of
/// the smallest node id they contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    component_of: Vec<usize>,
    count: usize,
}

impl Components {
    /// Number of connected components.
    #[inline]
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.component_of[v.index()]
    }

    /// Returns `true` if `u` and `v` lie in the same component.
    #[inline]
    #[must_use]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component_of(u) == self.component_of(v)
    }

    /// Returns the nodes of each component, grouped by component id.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &c) in self.component_of.iter().enumerate() {
            out[c].push(NodeId::new(i));
        }
        out
    }
}

/// Computes the connected components of `g` via iterative DFS.
///
/// # Example
///
/// ```
/// use dmig_graph::{GraphBuilder, components::connected_components};
///
/// let g = GraphBuilder::new().nodes(5).edge(0, 1).edge(2, 3).build();
/// let comps = connected_components(&g);
/// assert_eq!(comps.count(), 3); // {0,1}, {2,3}, {4}
/// assert!(comps.same_component(0.into(), 1.into()));
/// assert!(!comps.same_component(1.into(), 2.into()));
/// ```
#[must_use]
pub fn connected_components(g: &Multigraph) -> Components {
    let n = g.num_nodes();
    let mut component_of = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    // Walk a flat CSR snapshot so the DFS reads contiguous slots with the
    // far endpoint precomputed, instead of one Vec plus an endpoint lookup
    // per incidence.
    let csr = g.to_csr();
    for start in 0..n {
        if component_of[start] != usize::MAX {
            continue;
        }
        component_of[start] = count;
        stack.push(NodeId::new(start));
        while let Some(v) = stack.pop() {
            for &(_, w) in csr.incident(v) {
                if component_of[w.index()] == usize::MAX {
                    component_of[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    Components {
        component_of,
        count,
    }
}

/// Returns `true` if every pair of non-isolated nodes is connected, i.e. the
/// edges of `g` span a single connected component (isolated nodes ignored).
#[must_use]
pub fn edges_connected(g: &Multigraph) -> bool {
    let comps = connected_components(g);
    let mut seen: Option<usize> = None;
    for v in g.nodes() {
        if g.degree(v) == 0 {
            continue;
        }
        let c = comps.component_of(v);
        match seen {
            None => seen = Some(c),
            Some(c0) if c0 != c => return false,
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_multigraph, GraphBuilder};

    #[test]
    fn empty_graph_has_no_components() {
        let comps = connected_components(&Multigraph::new());
        assert_eq!(comps.count(), 0);
        assert!(comps.groups().is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = Multigraph::with_nodes(3);
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 3);
        assert_eq!(
            comps.groups(),
            vec![
                vec![NodeId::new(0)],
                vec![NodeId::new(1)],
                vec![NodeId::new(2)],
            ]
        );
    }

    #[test]
    fn single_component_complete_graph() {
        let g = complete_multigraph(5, 2);
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 1);
    }

    #[test]
    fn self_loops_do_not_merge_components() {
        let mut g = Multigraph::with_nodes(2);
        g.add_edge(0.into(), 0.into());
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 2);
    }

    #[test]
    fn component_ids_ordered_by_smallest_member() {
        let g = GraphBuilder::new().nodes(6).edge(4, 5).edge(0, 2).build();
        let comps = connected_components(&g);
        assert_eq!(comps.component_of(0.into()), 0);
        assert_eq!(comps.component_of(2.into()), 0);
        assert_eq!(comps.component_of(1.into()), 1);
        assert_eq!(comps.component_of(4.into()), 3);
    }

    #[test]
    fn edges_connected_ignores_isolated() {
        let g = GraphBuilder::new().nodes(5).edge(0, 1).edge(1, 2).build();
        assert!(edges_connected(&g));
        let g2 = GraphBuilder::new().nodes(5).edge(0, 1).edge(2, 3).build();
        assert!(!edges_connected(&g2));
        assert!(edges_connected(&Multigraph::with_nodes(4)));
    }
}
