//! Bipartition detection.
//!
//! Reconfiguration workloads (old layout → new layout, disk addition,
//! drain-before-removal) produce naturally bipartite transfer graphs, for
//! which `dmig-core` has an exactly-optimal special-case solver. This module
//! detects bipartiteness and extracts the two sides.

use crate::{GraphError, Multigraph, NodeId};

/// A two-coloring of the nodes of a bipartite multigraph.
///
/// Produced by [`bipartition`]. Every edge has one endpoint on each side;
/// isolated nodes are assigned to the left side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartition {
    side: Vec<bool>,
}

impl Bipartition {
    /// Returns `true` if `v` is on the left side.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn is_left(&self, v: NodeId) -> bool {
        !self.side[v.index()]
    }

    /// Nodes on the left side, ascending.
    #[must_use]
    pub fn left(&self) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Nodes on the right side, ascending.
    #[must_use]
    pub fn right(&self) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Attempts to two-color the nodes of `g` so every edge crosses sides.
///
/// Parallel edges are fine; any self-loop makes the graph non-bipartite.
///
/// # Errors
///
/// Returns [`GraphError::NotBipartite`] with a witness node on an odd cycle
/// (or carrying a self-loop).
///
/// # Example
///
/// ```
/// use dmig_graph::{GraphBuilder, bipartite::bipartition};
///
/// let g = GraphBuilder::new().edge(0, 2).edge(1, 2).edge(1, 3).build();
/// let sides = bipartition(&g)?;
/// assert!(sides.is_left(0.into()) != sides.is_left(2.into()));
/// # Ok::<(), dmig_graph::GraphError>(())
/// ```
pub fn bipartition(g: &Multigraph) -> Result<Bipartition, GraphError> {
    let n = g.num_nodes();
    let mut side = vec![false; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();

    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &e in g.incident_edges(v) {
                let ep = g.endpoints(e);
                if ep.is_loop() {
                    return Err(GraphError::NotBipartite { witness: v });
                }
                let w = ep.other(v);
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    side[w.index()] = !side[v.index()];
                    queue.push_back(w);
                } else if side[w.index()] == side[v.index()] {
                    return Err(GraphError::NotBipartite { witness: w });
                }
            }
        }
    }
    Ok(Bipartition { side })
}

/// Returns `true` if `g` is bipartite.
#[must_use]
pub fn is_bipartite(g: &Multigraph) -> bool {
    bipartition(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{complete_multigraph, cycle_multigraph, GraphBuilder};

    #[test]
    fn even_cycle_is_bipartite() {
        let g = cycle_multigraph(6, 3);
        let sides = bipartition(&g).unwrap();
        for (_, ep) in g.edges() {
            assert_ne!(sides.is_left(ep.u), sides.is_left(ep.v));
        }
        assert_eq!(sides.left().len(), 3);
        assert_eq!(sides.right().len(), 3);
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let g = cycle_multigraph(5, 1);
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn triangle_not_bipartite() {
        assert!(!is_bipartite(&complete_multigraph(3, 2)));
    }

    #[test]
    fn self_loop_not_bipartite() {
        let mut g = Multigraph::with_nodes(1);
        g.add_edge(0.into(), 0.into());
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn parallel_edges_are_fine() {
        let g = GraphBuilder::new().parallel_edges(0, 1, 7).build();
        assert!(is_bipartite(&g));
    }

    #[test]
    fn isolated_nodes_go_left() {
        let g = GraphBuilder::new().nodes(3).edge(0, 1).build();
        let sides = bipartition(&g).unwrap();
        assert!(sides.is_left(2.into()));
    }

    #[test]
    fn disconnected_bipartite_components() {
        let g = GraphBuilder::new().edge(0, 1).edge(2, 3).edge(3, 4).build();
        assert!(is_bipartite(&g));
    }

    #[test]
    fn empty_graph_bipartite() {
        assert!(is_bipartite(&Multigraph::new()));
    }
}
