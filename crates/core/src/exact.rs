//! Exact branch-and-bound scheduler for small instances.
//!
//! The heterogeneous migration problem is NP-hard (it contains multigraph
//! edge coloring at `c_v = 1`), so no exact polynomial algorithm exists;
//! but small instances can be solved outright by backtracking search.
//! This solver serves three purposes in the reproduction:
//!
//! * it **certifies optimality gaps**: experiments compare the general
//!   solver's makespan against true OPT (not just the lower bound) on
//!   instances the search can afford;
//! * it pins down the hardness frontier examples (odd cycles at `c = 1`
//!   need `LB + 1`);
//! * it cross-checks the even-capacity solver's Theorem 4.1 claim
//!   independently of the flow machinery.
//!
//! Search: iterative deepening on the round count `k` starting at the
//! §III lower bound; for each `k`, depth-first assignment of rounds to
//! items with fail-first variable ordering (most-constrained edge next)
//! and color-symmetry breaking (a new round may only be opened by the
//! lexicographically first edge to use it).

use dmig_graph::{EdgeId, NodeId};

use crate::{bounds, MigrationProblem, MigrationSchedule, SolveError};

/// Configuration for [`solve_exact_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactConfig {
    /// Refuse instances with more items than this (exponential search).
    pub max_items: usize,
    /// Hard cap on explored search nodes per deepening level; `None`
    /// means unlimited (search is complete and the result certified).
    pub node_budget: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        // The budget keeps adversarial tight instances (for which the
        // search is genuinely exponential) from hanging callers like the
        // solver registry; ~5M nodes is well past anything the certified
        // experiments need while still bounded in wall-clock.
        ExactConfig {
            max_items: 24,
            node_budget: Some(5_000_000),
        }
    }
}

/// Outcome of an exact solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactReport {
    /// An optimal schedule.
    pub schedule: MigrationSchedule,
    /// The certified optimum (`schedule.makespan()`).
    pub optimum: usize,
    /// Search nodes explored across all deepening levels.
    pub nodes_explored: u64,
}

/// Solves the instance exactly with default limits.
///
/// # Errors
///
/// Returns [`SolveError::InstanceTooLarge`] beyond
/// [`ExactConfig::max_items`] items.
///
/// # Example
///
/// ```
/// use dmig_core::{exact::solve_exact, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// // K3 at c = 1: lower bound 2, true optimum 3 (odd cycle).
/// let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1)?;
/// let report = solve_exact(&p)?;
/// assert_eq!(report.optimum, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_exact(problem: &MigrationProblem) -> Result<ExactReport, SolveError> {
    solve_exact_with(problem, &ExactConfig::default())
}

/// Solves the instance exactly with explicit limits.
///
/// # Errors
///
/// Returns [`SolveError::InstanceTooLarge`] if the instance exceeds
/// `config.max_items`, or [`SolveError::SearchBudgetExceeded`] if the
/// node budget ran out before the search completed (the result would be
/// uncertified).
pub fn solve_exact_with(
    problem: &MigrationProblem,
    config: &ExactConfig,
) -> Result<ExactReport, SolveError> {
    let m = problem.num_items();
    if m > config.max_items {
        return Err(SolveError::InstanceTooLarge {
            items: m,
            limit: config.max_items,
        });
    }
    if m == 0 {
        return Ok(ExactReport {
            schedule: MigrationSchedule::default(),
            optimum: 0,
            nodes_explored: 0,
        });
    }

    let lb = bounds::lower_bound(problem).max(1);
    let mut total_nodes = 0u64;
    // OPT ≤ m always (one item per round), so deepening terminates.
    for k in lb..=m {
        let mut search = Search::new(problem, k, config.node_budget);
        match search.run() {
            Outcome::Found(assign) => {
                let mut rounds = vec![Vec::new(); k];
                for (i, &r) in assign.iter().enumerate() {
                    rounds[r as usize].push(EdgeId::new(i));
                }
                let mut schedule = MigrationSchedule::from_rounds(rounds);
                schedule.trim_empty_rounds();
                total_nodes += search.nodes;
                let optimum = schedule.makespan();
                return Ok(ExactReport {
                    schedule,
                    optimum,
                    nodes_explored: total_nodes,
                });
            }
            Outcome::Infeasible => {
                total_nodes += search.nodes;
            }
            Outcome::BudgetExhausted => {
                return Err(SolveError::SearchBudgetExceeded { at_rounds: k });
            }
        }
    }
    Err(SolveError::Internal(
        "exact search failed to find the trivial schedule".into(),
    ))
}

enum Outcome {
    Found(Vec<u32>),
    Infeasible,
    BudgetExhausted,
}

struct Search<'a> {
    problem: &'a MigrationProblem,
    k: usize,
    /// `load[v * k + r]`: transfers of disk `v` in round `r`.
    load: Vec<u32>,
    assign: Vec<Option<u32>>,
    /// Highest round index opened so far (symmetry breaking).
    max_open: i64,
    nodes: u64,
    budget: Option<u64>,
}

impl<'a> Search<'a> {
    fn new(problem: &'a MigrationProblem, k: usize, budget: Option<u64>) -> Self {
        Search {
            problem,
            k,
            load: vec![0; problem.num_disks() * k],
            assign: vec![None; problem.num_items()],
            max_open: -1,
            nodes: 0,
            budget,
        }
    }

    fn cap(&self, v: NodeId) -> u32 {
        self.problem.capacities().get(v)
    }

    fn feasible_rounds(&self, e: usize) -> Vec<u32> {
        let ep = self.problem.graph().endpoints(EdgeId::new(e));
        // Symmetry breaking: at most one *new* round may be opened.
        let horizon = ((self.max_open + 1).min(self.k as i64 - 1)) as usize;
        (0..=horizon)
            .filter(|&r| {
                self.load[ep.u.index() * self.k + r] < self.cap(ep.u)
                    && self.load[ep.v.index() * self.k + r] < self.cap(ep.v)
            })
            .map(|r| u32::try_from(r).expect("round fits"))
            .collect()
    }

    fn run(&mut self) -> Outcome {
        self.dfs()
    }

    fn dfs(&mut self) -> Outcome {
        self.nodes += 1;
        if let Some(b) = self.budget {
            if self.nodes > b {
                return Outcome::BudgetExhausted;
            }
        }
        // Fail-first: pick the unassigned edge with fewest feasible rounds.
        let mut best: Option<(usize, Vec<u32>)> = None;
        for e in 0..self.assign.len() {
            if self.assign[e].is_some() {
                continue;
            }
            let options = self.feasible_rounds(e);
            if options.is_empty() {
                return Outcome::Infeasible;
            }
            let better = match &best {
                None => true,
                Some((_, o)) => options.len() < o.len(),
            };
            if better {
                let single = options.len() == 1;
                best = Some((e, options));
                if single {
                    break;
                }
            }
        }
        let Some((e, options)) = best else {
            // Everything assigned.
            let assign: Vec<u32> = self
                .assign
                .iter()
                .map(|a| a.expect("complete assignment"))
                .collect();
            return Outcome::Found(assign);
        };

        let ep = self.problem.graph().endpoints(EdgeId::new(e));
        for r in options {
            let ri = r as usize;
            self.assign[e] = Some(r);
            self.load[ep.u.index() * self.k + ri] += 1;
            self.load[ep.v.index() * self.k + ri] += 1;
            let prev_open = self.max_open;
            self.max_open = self.max_open.max(i64::from(r));

            match self.dfs() {
                Outcome::Found(a) => return Outcome::Found(a),
                Outcome::BudgetExhausted => return Outcome::BudgetExhausted,
                Outcome::Infeasible => {}
            }

            self.max_open = prev_open;
            self.load[ep.u.index() * self.k + ri] -= 1;
            self.load[ep.v.index() * self.k + ri] -= 1;
            self.assign[e] = None;
        }
        Outcome::Infeasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::solve_general;
    use crate::{even::solve_even, Capacities};
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph, star_multigraph};
    use dmig_graph::Multigraph;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(2), 1).unwrap();
        let r = solve_exact(&p).unwrap();
        assert_eq!(r.optimum, 0);
    }

    #[test]
    fn odd_cycles_certified_lb_plus_one() {
        for n in [3usize, 5, 7] {
            let p = MigrationProblem::uniform(cycle_multigraph(n, 1), 1).unwrap();
            let r = solve_exact(&p).unwrap();
            r.schedule.validate(&p).unwrap();
            assert_eq!(r.optimum, 3, "odd C{n} at c=1 needs 3 rounds");
            assert_eq!(bounds::lower_bound(&p), 2);
        }
    }

    #[test]
    fn even_cycle_hits_lb() {
        let p = MigrationProblem::uniform(cycle_multigraph(6, 1), 1).unwrap();
        let r = solve_exact(&p).unwrap();
        assert_eq!(r.optimum, 2);
    }

    #[test]
    fn agrees_with_even_solver() {
        let cases = [
            MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap(),
            MigrationProblem::uniform(star_multigraph(4, 2), 2).unwrap(),
            MigrationProblem::new(
                complete_multigraph(3, 3),
                Capacities::from_vec(vec![2, 4, 2]),
            )
            .unwrap(),
        ];
        for p in &cases {
            let exact = solve_exact(p).unwrap();
            let even = solve_even(p).unwrap();
            exact.schedule.validate(p).unwrap();
            assert_eq!(
                exact.optimum,
                even.makespan(),
                "Theorem 4.1 cross-check on {p}"
            );
            assert_eq!(exact.optimum, p.delta_prime());
        }
    }

    #[test]
    fn general_solver_matches_opt_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(0xE84C7);
        let mut exact_wins = 0usize;
        for _ in 0..25 {
            let n = rng.gen_range(3..7);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..14) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..n).map(|_| rng.gen_range(1..4u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            let exact = solve_exact(&p).unwrap();
            exact.schedule.validate(&p).unwrap();
            let general = solve_general(&p);
            assert!(general.schedule.makespan() >= exact.optimum);
            // The paper's guarantee allows slack; on these tiny instances
            // demand at most one extra round.
            assert!(
                general.schedule.makespan() <= exact.optimum + 1,
                "general {} vs OPT {} on {p}",
                general.schedule.makespan(),
                exact.optimum
            );
            if general.schedule.makespan() > exact.optimum {
                exact_wins += 1;
            }
        }
        // Heuristic sanity: the general solver should hit OPT usually.
        assert!(
            exact_wins <= 5,
            "general solver missed OPT too often: {exact_wins}"
        );
    }

    #[test]
    fn size_guard() {
        let p = MigrationProblem::uniform(complete_multigraph(8, 1), 1).unwrap();
        let err = solve_exact_with(
            &p,
            &ExactConfig {
                max_items: 10,
                node_budget: None,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SolveError::InstanceTooLarge {
                items: 28,
                limit: 10
            }
        ));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 1).unwrap();
        let err = solve_exact_with(
            &p,
            &ExactConfig {
                max_items: 24,
                node_budget: Some(3),
            },
        );
        assert!(matches!(err, Err(SolveError::SearchBudgetExceeded { .. })));
    }

    #[test]
    fn optimum_at_least_lower_bound() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 2), 3).unwrap();
        let r = solve_exact(&p).unwrap();
        assert!(r.optimum >= bounds::lower_bound(&p));
        assert!(r.nodes_explored > 0);
    }
}
