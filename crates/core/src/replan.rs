//! Online replanning: extend an in-flight migration with new transfers,
//! and repair it after cluster changes.
//!
//! Real clusters do not freeze while a migration runs — demand shifts, new
//! reconfiguration deltas arrive (the paper's §I notes upgrades "as often
//! as every few days"), disks fail, and bandwidths collapse under live
//! traffic. Replanning keeps already-executed work untouched, merges the
//! *unexecuted* remainder of the current schedule with any newly arrived
//! transfers into one residual instance, applies cluster changes (disk
//! crash-stops with optional replacement disks, updated transfer
//! constraints), and re-solves that with any [`crate::solver::Solver`].
//!
//! Item identity is preserved through an explicit mapping, so callers can
//! track a data item from the original plan through any number of
//! replans. Two entry points:
//!
//! * [`replan`] — the round-prefix form: everything in the first
//!   `executed_rounds` rounds is done, the rest is pending.
//! * [`replan_with`] — the general form: per-item doneness plus a
//!   [`ResidualChanges`] describing dead disks (with optional replacement
//!   redirects) and capacity overrides. Pending items touching a dead disk
//!   are rewritten to the replacement, or reported in
//!   [`Replanned::lost`] when none exists.

use dmig_graph::{EdgeId, Endpoints, Multigraph, NodeId};

use crate::solver::Solver;
use crate::{Capacities, MigrationProblem, MigrationSchedule, ProblemError, SolveError};

/// The origin of an item in a replanned instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemOrigin {
    /// Carried over from the original instance (original edge id).
    Original(EdgeId),
    /// Newly arrived (index into the `new_items` slice).
    New(usize),
}

/// Cluster changes to apply while building the residual instance.
#[derive(Clone, Debug, Default)]
pub struct ResidualChanges {
    /// Transfer-constraint overrides for the residual instance (must cover
    /// every disk when present). Use this to shrink `c_v` for disks whose
    /// observed bandwidth collapsed, or to restore it on recovery.
    pub capacities: Option<Capacities>,
    /// Crash-stopped disks, each with an optional replacement. A pending
    /// item with an endpoint on a dead disk is redirected to the
    /// replacement; with no replacement it is reported lost. Replacements
    /// must be live disks.
    pub redirects: Vec<(NodeId, Option<NodeId>)>,
}

impl ResidualChanges {
    /// Whether the changes are a no-op (no deaths, no capacity updates).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.capacities.is_none() && self.redirects.is_empty()
    }
}

/// Result of [`replan`]/[`replan_with`]: the residual instance, a schedule
/// for it, and the identity mapping back to the caller's item spaces.
#[derive(Clone, Debug)]
pub struct Replanned {
    /// The residual instance (pending old items + new items, with dead
    /// endpoints redirected).
    pub problem: MigrationProblem,
    /// Schedule for the residual instance.
    pub schedule: MigrationSchedule,
    /// `origin[e]` says where residual item `e` came from.
    pub origin: Vec<ItemOrigin>,
    /// Pending items that could not be carried over: an endpoint died and
    /// no replacement was available.
    pub lost: Vec<ItemOrigin>,
    /// Pending items whose endpoints both mapped to the same live disk
    /// after redirection — no transfer is needed any more; the caller
    /// should account them as trivially complete.
    pub completed: Vec<ItemOrigin>,
}

/// Errors from [`replan`]/[`replan_with`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplanError {
    /// `executed_rounds` exceeds the schedule length.
    TooManyExecutedRounds {
        /// Rounds claimed executed.
        executed: usize,
        /// Rounds in the schedule.
        available: usize,
    },
    /// The `done` vector does not cover every item of the problem.
    DoneLengthMismatch {
        /// Length of the provided doneness vector.
        done: usize,
        /// Items in the problem.
        items: usize,
    },
    /// A redirect entry is unusable: the dead disk or its replacement is
    /// out of range, or the replacement is itself marked dead.
    BadRedirect {
        /// The dead disk of the offending entry.
        disk: NodeId,
        /// Why the entry was rejected.
        reason: String,
    },
    /// The residual instance failed validation (e.g. a new item references
    /// an unknown disk).
    Problem(ProblemError),
    /// The solver failed on the residual instance.
    Solve(SolveError),
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplanError::TooManyExecutedRounds {
                executed,
                available,
            } => {
                write!(
                    f,
                    "{executed} rounds marked executed but schedule has {available}"
                )
            }
            ReplanError::DoneLengthMismatch { done, items } => {
                write!(
                    f,
                    "doneness vector covers {done} items but problem has {items}"
                )
            }
            ReplanError::BadRedirect { disk, reason } => {
                write!(f, "bad redirect for dead disk {disk}: {reason}")
            }
            ReplanError::Problem(e) => write!(f, "residual instance invalid: {e}"),
            ReplanError::Solve(e) => write!(f, "residual solve failed: {e}"),
        }
    }
}

impl std::error::Error for ReplanError {}

impl From<ProblemError> for ReplanError {
    fn from(e: ProblemError) -> Self {
        ReplanError::Problem(e)
    }
}

impl From<SolveError> for ReplanError {
    fn from(e: SolveError) -> Self {
        ReplanError::Solve(e)
    }
}

/// Replans after `executed_rounds` of `schedule` have run: the remaining
/// items of `problem` plus `new_items` (source/destination pairs over the
/// same disks) are merged into a residual instance and solved with
/// `solver`.
///
/// The disk set and capacities are inherited from `problem`. This is
/// [`replan_with`] with per-round doneness and no cluster changes, so
/// [`Replanned::lost`] and [`Replanned::completed`] are always empty.
///
/// # Errors
///
/// See [`ReplanError`].
pub fn replan(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    executed_rounds: usize,
    new_items: &[Endpoints],
    solver: &dyn Solver,
) -> Result<Replanned, ReplanError> {
    if executed_rounds > schedule.makespan() {
        return Err(ReplanError::TooManyExecutedRounds {
            executed: executed_rounds,
            available: schedule.makespan(),
        });
    }
    let mut done = vec![false; problem.graph().num_edges()];
    for round in &schedule.rounds()[..executed_rounds] {
        for &e in round {
            done[e.index()] = true;
        }
    }
    replan_with(
        problem,
        &done,
        new_items,
        &ResidualChanges::default(),
        solver,
    )
}

/// Per-disk fate under a set of redirects: alive, dead with a replacement,
/// or dead with items lost.
fn build_redirect_map(
    n: usize,
    changes: &ResidualChanges,
) -> Result<Vec<Option<Option<NodeId>>>, ReplanError> {
    // map[v] = None             -> alive
    // map[v] = Some(None)       -> dead, no replacement (items lost)
    // map[v] = Some(Some(w))    -> dead, redirect to w
    let mut map: Vec<Option<Option<NodeId>>> = vec![None; n];
    for &(dead, replacement) in &changes.redirects {
        if dead.index() >= n {
            return Err(ReplanError::BadRedirect {
                disk: dead,
                reason: format!("disk out of range (cluster has {n} disks)"),
            });
        }
        map[dead.index()] = Some(replacement);
    }
    // Validate replacements against the *final* dead set, so a redirect
    // chain (a -> b with b also dead) is rejected instead of silently
    // scheduling transfers onto a dead disk.
    for &(dead, replacement) in &changes.redirects {
        if let Some(r) = replacement {
            if r.index() >= n {
                return Err(ReplanError::BadRedirect {
                    disk: dead,
                    reason: format!("replacement {r} out of range"),
                });
            }
            if map[r.index()].is_some() {
                return Err(ReplanError::BadRedirect {
                    disk: dead,
                    reason: format!("replacement {r} is itself dead"),
                });
            }
        }
    }
    Ok(map)
}

/// Warm-start entry point for resuming an interrupted execution: rebuilds
/// a residual instance and its *surviving* schedule from checkpointed raw
/// parts — endpoints per pending item, the transfer constraints in force,
/// and the remaining rounds as item indices — without invoking a solver.
///
/// A resumed executor continues the rounds the interrupted run already
/// solved (the [`ItemOrigin`] identity chain stays intact through the next
/// real replan) instead of re-solving from scratch, so its continuation is
/// bit-for-bit the one the interrupted run would have taken.
///
/// # Errors
///
/// [`ReplanError::Problem`] when an endpoint is out of range or the
/// rebuilt instance fails validation, and [`ReplanError::Solve`] when the
/// surviving rounds do not form a valid schedule for it.
pub fn rebuild_residual(
    num_disks: usize,
    items: &[Endpoints],
    capacities: Capacities,
    rounds: Vec<Vec<EdgeId>>,
) -> Result<(MigrationProblem, MigrationSchedule), ReplanError> {
    let mut residual = Multigraph::with_nodes(num_disks);
    for &ep in items {
        residual
            .try_add_edge(ep.u, ep.v)
            .map_err(|e| ReplanError::Solve(SolveError::Internal(e.to_string())))?;
    }
    let problem = MigrationProblem::new(residual, capacities)?;
    let schedule = MigrationSchedule::from_rounds(rounds);
    schedule
        .validate(&problem)
        .map_err(|e| ReplanError::Solve(SolveError::Internal(e.to_string())))?;
    Ok((problem, schedule))
}

/// The general replanning form: items with `done[e] == true` are finished,
/// the rest are pending. Pending items and `new_items` are merged into a
/// residual instance with `changes` applied — endpoints on dead disks are
/// redirected to their replacement (or the item is reported lost), and
/// capacity overrides replace the inherited transfer constraints — then
/// the residual is solved with `solver`.
///
/// Items whose endpoints both map to the same live disk after redirection
/// are returned in [`Replanned::completed`] (no transfer needed) rather
/// than scheduled.
///
/// # Errors
///
/// See [`ReplanError`].
pub fn replan_with(
    problem: &MigrationProblem,
    done: &[bool],
    new_items: &[Endpoints],
    changes: &ResidualChanges,
    solver: &dyn Solver,
) -> Result<Replanned, ReplanError> {
    let g = problem.graph();
    if done.len() != g.num_edges() {
        return Err(ReplanError::DoneLengthMismatch {
            done: done.len(),
            items: g.num_edges(),
        });
    }
    let n = g.num_nodes();
    let redirect = build_redirect_map(n, changes)?;
    // Maps one endpoint through the redirect table. `Err(())` = endpoint
    // is on a dead disk with no replacement.
    let map_endpoint = |v: NodeId| -> Result<Option<NodeId>, ()> {
        if v.index() >= n {
            // Out-of-range endpoints (only possible for new items) fall
            // through to residual-graph validation below.
            return Ok(Some(v));
        }
        match redirect[v.index()] {
            None => Ok(Some(v)),
            Some(Some(w)) => Ok(Some(w)),
            Some(None) => Err(()),
        }
    };

    let mut residual = Multigraph::with_nodes(n);
    let mut origin = Vec::new();
    let mut lost = Vec::new();
    let mut completed = Vec::new();
    let mut place = |ep: Endpoints, who: ItemOrigin| -> Result<(), ReplanError> {
        match (map_endpoint(ep.u), map_endpoint(ep.v)) {
            (Ok(Some(u)), Ok(Some(v))) if u == v => completed.push(who),
            (Ok(Some(u)), Ok(Some(v))) => {
                residual.try_add_edge(u, v).map_err(|_| {
                    ReplanError::Problem(ProblemError::CapacityLengthMismatch {
                        capacities: problem.capacities().len(),
                        nodes: n,
                    })
                })?;
                origin.push(who);
            }
            _ => lost.push(who),
        }
        Ok(())
    };
    for (e, ep) in g.edges() {
        if !done[e.index()] {
            place(ep, ItemOrigin::Original(e))?;
        }
    }
    for (i, &ep) in new_items.iter().enumerate() {
        place(ep, ItemOrigin::New(i))?;
    }

    let caps = match &changes.capacities {
        Some(c) => c.clone(),
        None => Capacities::from_vec(problem.capacities().as_slice().to_vec()),
    };
    let residual_problem = MigrationProblem::new(residual, caps)?;
    let schedule = solver.solve(&residual_problem)?;
    schedule
        .validate(&residual_problem)
        .map_err(|e| ReplanError::Solve(SolveError::Internal(e.to_string())))?;
    Ok(Replanned {
        problem: residual_problem,
        schedule,
        origin,
        lost,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{AutoSolver, GreedySolver};
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::GraphBuilder;

    fn endpoints(u: usize, v: usize) -> Endpoints {
        Endpoints {
            u: NodeId::new(u),
            v: NodeId::new(v),
        }
    }

    #[test]
    fn replan_with_no_progress_and_no_news_is_resolve() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let r = replan(&p, &s, 0, &[], &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), p.num_items());
        assert_eq!(r.schedule.makespan(), s.makespan());
        assert!(r
            .origin
            .iter()
            .all(|o| matches!(o, ItemOrigin::Original(_))));
        assert!(r.lost.is_empty());
        assert!(r.completed.is_empty());
    }

    #[test]
    fn executed_rounds_are_dropped() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let executed = 2;
        let moved: usize = s.rounds()[..executed].iter().map(Vec::len).sum();
        let r = replan(&p, &s, executed, &[], &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), p.num_items() - moved);
        r.schedule.validate(&r.problem).unwrap();
    }

    #[test]
    fn new_items_merge_and_map_back() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let news = [endpoints(0, 1), endpoints(1, 2)];
        let r = replan(&p, &s, s.makespan(), &news, &AutoSolver).unwrap();
        // Everything executed: only the new items remain.
        assert_eq!(r.problem.num_items(), 2);
        assert_eq!(r.origin, vec![ItemOrigin::New(0), ItemOrigin::New(1)]);
        r.schedule.validate(&r.problem).unwrap();
    }

    #[test]
    fn mixed_residual_preserves_identities() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let news = [endpoints(2, 0)];
        let r = replan(&p, &s, 1, &news, &GreedySolver).unwrap();
        let originals = r
            .origin
            .iter()
            .filter(|o| matches!(o, ItemOrigin::Original(_)))
            .count();
        let moved: usize = s.rounds()[..1].iter().map(Vec::len).sum();
        assert_eq!(originals, p.num_items() - moved);
        // Each original origin refers to an edge with identical endpoints.
        for (res_idx, o) in r.origin.iter().enumerate() {
            if let ItemOrigin::Original(orig) = o {
                assert_eq!(
                    r.problem.graph().endpoints(EdgeId::new(res_idx)),
                    p.graph().endpoints(*orig)
                );
            }
        }
    }

    #[test]
    fn too_many_executed_rounds_rejected() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let err = replan(&p, &s, s.makespan() + 1, &[], &AutoSolver).unwrap_err();
        assert!(matches!(err, ReplanError::TooManyExecutedRounds { .. }));
    }

    #[test]
    fn new_item_on_unknown_disk_rejected() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let err = replan(&p, &s, 0, &[endpoints(0, 9)], &AutoSolver).unwrap_err();
        assert!(matches!(err, ReplanError::Problem(_)));
    }

    #[test]
    fn repeated_replanning_converges() {
        // Run rounds one at a time, adding a trickle of new items; the
        // migration must still finish (new arrivals stop eventually).
        let mut problem = MigrationProblem::uniform(complete_multigraph(3, 3), 2).unwrap();
        let mut schedule = AutoSolver.solve(&problem).unwrap();
        let mut arrivals = vec![vec![endpoints(0, 1)], vec![endpoints(1, 2)], vec![], vec![]];
        let mut steps = 0;
        while schedule.makespan() > 0 {
            let news = arrivals.pop().unwrap_or_default();
            let r = replan(
                &problem,
                &schedule,
                1.min(schedule.makespan()),
                &news,
                &AutoSolver,
            )
            .unwrap();
            problem = r.problem;
            schedule = r.schedule;
            steps += 1;
            assert!(steps < 50, "replanning loop must terminate");
        }
        assert_eq!(problem.num_items(), 0);
    }

    // --- replan_with: dead disks, redirects, capacity updates ---

    /// 4 disks: 0-1, 1-2, 2-3 pending; disk 3 is a spare for disk 1.
    fn path_problem() -> MigrationProblem {
        let g = GraphBuilder::new().nodes(4).edge(0, 1).edge(1, 2).build();
        MigrationProblem::uniform(g, 2).unwrap()
    }

    #[test]
    fn dead_disk_with_replacement_redirects_edges() {
        let p = path_problem();
        let done = vec![false; p.num_items()];
        let changes = ResidualChanges {
            capacities: None,
            redirects: vec![(NodeId::new(1), Some(NodeId::new(3)))],
        };
        let r = replan_with(&p, &done, &[], &changes, &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), 2);
        assert!(r.lost.is_empty());
        // Every residual edge now touches the spare, none touches disk 1.
        for (_, ep) in r.problem.graph().edges() {
            assert!(!ep.contains(NodeId::new(1)));
            assert!(ep.contains(NodeId::new(3)));
        }
        r.schedule.validate(&r.problem).unwrap();
    }

    #[test]
    fn dead_disk_without_replacement_loses_its_items() {
        let p = path_problem();
        let done = vec![false; p.num_items()];
        let changes = ResidualChanges {
            capacities: None,
            redirects: vec![(NodeId::new(1), None)],
        };
        let r = replan_with(&p, &done, &[], &changes, &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), 0);
        assert_eq!(
            r.lost,
            vec![
                ItemOrigin::Original(EdgeId::new(0)),
                ItemOrigin::Original(EdgeId::new(1))
            ]
        );
    }

    #[test]
    fn done_items_do_not_resurface_in_losses() {
        let p = path_problem();
        let done = vec![true, false];
        let changes = ResidualChanges {
            capacities: None,
            redirects: vec![(NodeId::new(1), None)],
        };
        let r = replan_with(&p, &done, &[], &changes, &AutoSolver).unwrap();
        assert_eq!(r.lost, vec![ItemOrigin::Original(EdgeId::new(1))]);
    }

    #[test]
    fn redirect_collapsing_both_endpoints_completes_the_item() {
        // Edge 0-1 with both endpoints dead, both redirected to disk 2:
        // nothing left to transfer.
        let g = GraphBuilder::new().nodes(3).edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let changes = ResidualChanges {
            capacities: None,
            redirects: vec![
                (NodeId::new(0), Some(NodeId::new(2))),
                (NodeId::new(1), Some(NodeId::new(2))),
            ],
        };
        let r = replan_with(&p, &[false], &[], &changes, &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), 0);
        assert_eq!(r.completed, vec![ItemOrigin::Original(EdgeId::new(0))]);
        assert!(r.lost.is_empty());
    }

    #[test]
    fn replacement_must_be_live_and_in_range() {
        let p = path_problem();
        let done = vec![false; p.num_items()];
        for redirects in [
            // Replacement out of range.
            vec![(NodeId::new(1), Some(NodeId::new(9)))],
            // Replacement is itself dead.
            vec![
                (NodeId::new(1), Some(NodeId::new(2))),
                (NodeId::new(2), None),
            ],
            // Dead disk out of range.
            vec![(NodeId::new(9), None)],
        ] {
            let changes = ResidualChanges {
                capacities: None,
                redirects,
            };
            let err = replan_with(&p, &done, &[], &changes, &AutoSolver).unwrap_err();
            assert!(matches!(err, ReplanError::BadRedirect { .. }), "{err}");
        }
    }

    #[test]
    fn capacity_override_applies_to_residual() {
        let p = path_problem();
        let done = vec![false; p.num_items()];
        let changes = ResidualChanges {
            capacities: Some(Capacities::from_vec(vec![1, 1, 1, 1])),
            redirects: vec![],
        };
        let r = replan_with(&p, &done, &[], &changes, &AutoSolver).unwrap();
        assert_eq!(r.problem.capacities().as_slice(), &[1, 1, 1, 1]);
        // Disk 1 touches both items at c=1: two rounds now.
        assert_eq!(r.schedule.makespan(), 2);
    }

    #[test]
    fn done_length_mismatch_rejected() {
        let p = path_problem();
        let err =
            replan_with(&p, &[false], &[], &ResidualChanges::default(), &AutoSolver).unwrap_err();
        assert!(matches!(err, ReplanError::DoneLengthMismatch { .. }));
    }

    #[test]
    fn new_items_are_redirected_too() {
        let p = path_problem();
        let done = vec![true; p.num_items()];
        let changes = ResidualChanges {
            capacities: None,
            redirects: vec![(NodeId::new(1), Some(NodeId::new(3)))],
        };
        let news = [endpoints(0, 1), endpoints(1, 2)];
        let r = replan_with(&p, &done, &news, &changes, &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), 2);
        assert_eq!(r.origin, vec![ItemOrigin::New(0), ItemOrigin::New(1)]);
        for (_, ep) in r.problem.graph().edges() {
            assert!(!ep.contains(NodeId::new(1)));
        }
    }
}
