//! Online replanning: extend an in-flight migration with new transfers.
//!
//! Real clusters do not freeze while a migration runs — demand shifts and
//! new reconfiguration deltas arrive (the paper's §I notes upgrades "as
//! often as every few days"). Replanning keeps already-executed rounds
//! untouched, merges the *unexecuted* remainder of the current schedule
//! with the newly arrived transfers into one residual instance, and
//! re-solves that with any [`crate::solver::Solver`].
//!
//! Item identity is preserved through an explicit mapping, so callers can
//! track a data item from the original plan through any number of
//! replans.

use dmig_graph::{EdgeId, Endpoints, Multigraph};

use crate::solver::Solver;
use crate::{Capacities, MigrationProblem, MigrationSchedule, ProblemError, SolveError};

/// The origin of an item in a replanned instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemOrigin {
    /// Carried over from the original instance (original edge id).
    Original(EdgeId),
    /// Newly arrived (index into the `new_items` slice).
    New(usize),
}

/// Result of [`replan`]: the residual instance, a schedule for it, and
/// the identity mapping back to the caller's item spaces.
#[derive(Clone, Debug)]
pub struct Replanned {
    /// The residual instance (pending old items + new items).
    pub problem: MigrationProblem,
    /// Schedule for the residual instance.
    pub schedule: MigrationSchedule,
    /// `origin[e]` says where residual item `e` came from.
    pub origin: Vec<ItemOrigin>,
}

/// Errors from [`replan`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplanError {
    /// `executed_rounds` exceeds the schedule length.
    TooManyExecutedRounds {
        /// Rounds claimed executed.
        executed: usize,
        /// Rounds in the schedule.
        available: usize,
    },
    /// The residual instance failed validation (e.g. a new item references
    /// an unknown disk).
    Problem(ProblemError),
    /// The solver failed on the residual instance.
    Solve(SolveError),
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplanError::TooManyExecutedRounds {
                executed,
                available,
            } => {
                write!(
                    f,
                    "{executed} rounds marked executed but schedule has {available}"
                )
            }
            ReplanError::Problem(e) => write!(f, "residual instance invalid: {e}"),
            ReplanError::Solve(e) => write!(f, "residual solve failed: {e}"),
        }
    }
}

impl std::error::Error for ReplanError {}

impl From<ProblemError> for ReplanError {
    fn from(e: ProblemError) -> Self {
        ReplanError::Problem(e)
    }
}

impl From<SolveError> for ReplanError {
    fn from(e: SolveError) -> Self {
        ReplanError::Solve(e)
    }
}

/// Replans after `executed_rounds` of `schedule` have run: the remaining
/// items of `problem` plus `new_items` (source/destination pairs over the
/// same disks) are merged into a residual instance and solved with
/// `solver`.
///
/// The disk set and capacities are inherited from `problem`.
///
/// # Errors
///
/// See [`ReplanError`].
pub fn replan(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    executed_rounds: usize,
    new_items: &[Endpoints],
    solver: &dyn Solver,
) -> Result<Replanned, ReplanError> {
    if executed_rounds > schedule.makespan() {
        return Err(ReplanError::TooManyExecutedRounds {
            executed: executed_rounds,
            available: schedule.makespan(),
        });
    }
    let g = problem.graph();

    // Items already moved in the executed prefix.
    let mut done = vec![false; g.num_edges()];
    for round in &schedule.rounds()[..executed_rounds] {
        for &e in round {
            done[e.index()] = true;
        }
    }

    let mut residual = Multigraph::with_nodes(g.num_nodes());
    let mut origin = Vec::new();
    for (e, ep) in g.edges() {
        if !done[e.index()] {
            residual.add_edge(ep.u, ep.v);
            origin.push(ItemOrigin::Original(e));
        }
    }
    for (i, ep) in new_items.iter().enumerate() {
        residual.try_add_edge(ep.u, ep.v).map_err(|_| {
            ReplanError::Problem(ProblemError::CapacityLengthMismatch {
                capacities: problem.capacities().len(),
                nodes: residual.num_nodes(),
            })
        })?;
        origin.push(ItemOrigin::New(i));
    }

    let caps = Capacities::from_vec(problem.capacities().as_slice().to_vec());
    let residual_problem = MigrationProblem::new(residual, caps)?;
    let schedule = solver.solve(&residual_problem)?;
    schedule
        .validate(&residual_problem)
        .map_err(|e| ReplanError::Solve(SolveError::Internal(e.to_string())))?;
    Ok(Replanned {
        problem: residual_problem,
        schedule,
        origin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{AutoSolver, GreedySolver};
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::NodeId;

    fn endpoints(u: usize, v: usize) -> Endpoints {
        Endpoints {
            u: NodeId::new(u),
            v: NodeId::new(v),
        }
    }

    #[test]
    fn replan_with_no_progress_and_no_news_is_resolve() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let r = replan(&p, &s, 0, &[], &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), p.num_items());
        assert_eq!(r.schedule.makespan(), s.makespan());
        assert!(r
            .origin
            .iter()
            .all(|o| matches!(o, ItemOrigin::Original(_))));
    }

    #[test]
    fn executed_rounds_are_dropped() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let executed = 2;
        let moved: usize = s.rounds()[..executed].iter().map(Vec::len).sum();
        let r = replan(&p, &s, executed, &[], &AutoSolver).unwrap();
        assert_eq!(r.problem.num_items(), p.num_items() - moved);
        r.schedule.validate(&r.problem).unwrap();
    }

    #[test]
    fn new_items_merge_and_map_back() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let news = [endpoints(0, 1), endpoints(1, 2)];
        let r = replan(&p, &s, s.makespan(), &news, &AutoSolver).unwrap();
        // Everything executed: only the new items remain.
        assert_eq!(r.problem.num_items(), 2);
        assert_eq!(r.origin, vec![ItemOrigin::New(0), ItemOrigin::New(1)]);
        r.schedule.validate(&r.problem).unwrap();
    }

    #[test]
    fn mixed_residual_preserves_identities() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let news = [endpoints(2, 0)];
        let r = replan(&p, &s, 1, &news, &GreedySolver).unwrap();
        let originals = r
            .origin
            .iter()
            .filter(|o| matches!(o, ItemOrigin::Original(_)))
            .count();
        let moved: usize = s.rounds()[..1].iter().map(Vec::len).sum();
        assert_eq!(originals, p.num_items() - moved);
        // Each original origin refers to an edge with identical endpoints.
        for (res_idx, o) in r.origin.iter().enumerate() {
            if let ItemOrigin::Original(orig) = o {
                assert_eq!(
                    r.problem.graph().endpoints(EdgeId::new(res_idx)),
                    p.graph().endpoints(*orig)
                );
            }
        }
    }

    #[test]
    fn too_many_executed_rounds_rejected() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let err = replan(&p, &s, s.makespan() + 1, &[], &AutoSolver).unwrap_err();
        assert!(matches!(err, ReplanError::TooManyExecutedRounds { .. }));
    }

    #[test]
    fn new_item_on_unknown_disk_rejected() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let err = replan(&p, &s, 0, &[endpoints(0, 9)], &AutoSolver).unwrap_err();
        assert!(matches!(err, ReplanError::Problem(_)));
    }

    #[test]
    fn repeated_replanning_converges() {
        // Run rounds one at a time, adding a trickle of new items; the
        // migration must still finish (new arrivals stop eventually).
        let mut problem = MigrationProblem::uniform(complete_multigraph(3, 3), 2).unwrap();
        let mut schedule = AutoSolver.solve(&problem).unwrap();
        let mut arrivals = vec![vec![endpoints(0, 1)], vec![endpoints(1, 2)], vec![], vec![]];
        let mut steps = 0;
        while schedule.makespan() > 0 {
            let news = arrivals.pop().unwrap_or_default();
            let r = replan(
                &problem,
                &schedule,
                1.min(schedule.makespan()),
                &news,
                &AutoSolver,
            )
            .unwrap();
            problem = r.problem;
            schedule = r.schedule;
            steps += 1;
            assert!(steps < 50, "replanning loop must terminate");
        }
        assert_eq!(problem.num_items(), 0);
    }
}
