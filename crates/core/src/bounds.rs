//! The paper's two lower bounds on the optimal number of rounds (§III).
//!
//! * `LB1 = Δ' = max_v ⌈d_v / c_v⌉` — disk `v` moves at most `c_v` items
//!   per round.
//! * `LB2 = Γ' = max_{S⊆V} ⌈2|E(S)| / Σ_{v∈S} c_v⌉` — a subset `S` absorbs
//!   at most `Σ c_v / 2` internal transfers per round (Lemma 3.1).
//!
//! `Γ'` is computed **exactly** in polynomial time: the inner ratio is a
//! vertex-weighted maximum-density subgraph (weights `c_v`), and the map
//! `x ↦ ⌈2x⌉` is nondecreasing, so the densest subset also maximizes the
//! ceiled bound. An exponential reference implementation is provided for
//! cross-checking on small instances.

use dmig_flow::max_density_subgraph;
use dmig_graph::NodeId;

use crate::MigrationProblem;

/// `LB1 = Δ' = max_v ⌈d_v / c_v⌉` (alias of
/// [`MigrationProblem::delta_prime`]).
#[must_use]
pub fn lb1(problem: &MigrationProblem) -> usize {
    problem.delta_prime()
}

/// Witness for the `Γ'` lower bound: the maximizing subset and its data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GammaWitness {
    /// The maximizing subset `S`.
    pub nodes: Vec<NodeId>,
    /// `|E(S)|`.
    pub internal_edges: u64,
    /// `Σ_{v∈S} c_v`.
    pub capacity_sum: u64,
    /// `⌈2|E(S)| / Σ c_v⌉`.
    pub bound: usize,
}

/// `LB2 = Γ'`, computed exactly via maximum-density subgraph, with the
/// maximizing subset as a witness. Returns `None` for an instance with no
/// items (`Γ' = 0`).
///
/// # Example
///
/// ```
/// use dmig_core::{bounds, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// // K3 with unit capacities: Γ' = ⌈2·3 / 3⌉ = 2 > 1 = ... Δ' is 2 as
/// // well here; on odd structures Γ' can exceed Δ' (see tests).
/// let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1)?;
/// let w = bounds::lb2_witness(&p).unwrap();
/// assert_eq!(w.bound, 2);
/// # Ok::<(), dmig_core::ProblemError>(())
/// ```
#[must_use]
pub fn lb2_witness(problem: &MigrationProblem) -> Option<GammaWitness> {
    let weights: Vec<u64> = problem
        .capacities()
        .as_slice()
        .iter()
        .map(|&c| u64::from(c))
        .collect();
    // Isolated zero-capacity disks never join a maximizing subset, but the
    // densest-subgraph routine requires positive weights only on used
    // nodes, which problem validation guarantees.
    let result = max_density_subgraph(problem.graph(), &weights)?;
    let bound = usize::try_from(result.ceil_scaled(2)).expect("bound fits usize");
    Some(GammaWitness {
        nodes: result.nodes,
        internal_edges: result.num_edges,
        capacity_sum: result.weight,
        bound,
    })
}

/// `LB2 = Γ'` as a plain number (0 when the instance has no items).
#[must_use]
pub fn lb2(problem: &MigrationProblem) -> usize {
    lb2_witness(problem).map_or(0, |w| w.bound)
}

/// The combined lower bound `max(Δ', Γ')` the paper measures against.
#[must_use]
pub fn lower_bound(problem: &MigrationProblem) -> usize {
    lb1(problem).max(lb2(problem))
}

/// The **integral sharpening** `Γ'' = max_S ⌈|E(S)| / ⌊Σ_{v∈S} c_v / 2⌋⌉`
/// of the paper's `Γ'` — an extension beyond the paper.
///
/// Soundness: in any single round, every transfer internal to `S`
/// consumes **two** units of `S`'s capacity budget `Σ c_v`, so at most
/// `⌊Σ c_v / 2⌋` internal transfers fit (the paper's Lemma 3.1 uses the
/// fractional `Σ c_v / 2`). When `Σ c_v` is odd the floor bites:
/// on `K3` with `c ≡ 1`, `Γ' = Δ' = 2` but `Γ'' = ⌈3/1⌉ = 3 = OPT` —
/// the integral bound closes the odd-cycle gap that `max(Δ', Γ')`
/// leaves open (experiment E8).
///
/// Unlike `Γ'`, the floored ratio is not a plain density, so this
/// implementation evaluates a sound *candidate family* (any subset yields
/// a valid lower bound): the exact `Γ'` witness, its single-node
/// perturbations, every connected component, and every closed
/// neighborhood. The result is always a valid lower bound; on instances
/// small enough for [`lb3_bruteforce`] the tests compare the two.
#[must_use]
pub fn lb3(problem: &MigrationProblem) -> usize {
    let g = problem.graph();
    if g.num_edges() == 0 {
        return 0;
    }
    let n = g.num_nodes();
    let mut best = 0usize;
    let mut consider = |subset: &[bool]| {
        best = best.max(evaluate_floored(problem, subset));
    };

    // Candidate 1: the exact Γ' witness and its single-node perturbations.
    if let Some(w) = lb2_witness(problem) {
        let mut base = vec![false; n];
        for v in &w.nodes {
            base[v.index()] = true;
        }
        consider(&base);
        for i in 0..n {
            let mut flipped = base.clone();
            flipped[i] = !flipped[i];
            consider(&flipped);
        }
    }
    // Candidate 2: whole connected components.
    let comps = dmig_graph::components::connected_components(g);
    for group in comps.groups() {
        let mut subset = vec![false; n];
        for v in group {
            subset[v.index()] = true;
        }
        consider(&subset);
    }
    // Candidate 3: closed neighborhoods N[v]. One marks/buffer pair is
    // reused across all nodes instead of allocating per neighbors() call.
    let mut marks = dmig_graph::NodeMarks::new();
    let mut nbrs = Vec::new();
    for v in g.nodes() {
        if g.degree(v) == 0 {
            continue;
        }
        let mut subset = vec![false; n];
        subset[v.index()] = true;
        g.neighbors_into(v, &mut marks, &mut nbrs);
        for &w in &nbrs {
            subset[w.index()] = true;
        }
        consider(&subset);
    }
    best
}

/// `⌈E(S) / ⌊c(S)/2⌋⌉` for one subset (0 when the floor is 0 — such a
/// subset cannot host an internal edge at all, and problem validation
/// rules the degenerate case out).
fn evaluate_floored(problem: &MigrationProblem, subset: &[bool]) -> usize {
    let g = problem.graph();
    let mut edges = 0u64;
    for (_, ep) in g.edges() {
        if subset[ep.u.index()] && subset[ep.v.index()] {
            edges += 1;
        }
    }
    if edges == 0 {
        return 0;
    }
    let cap_sum: u64 = g
        .nodes()
        .filter(|v| subset[v.index()])
        .map(|v| u64::from(problem.capacities().get(v)))
        .sum();
    let half = cap_sum / 2;
    if half == 0 {
        // Σc = 1 cannot host an internal edge; an internal edge with
        // Σc = 1 would violate per-round feasibility entirely, which
        // problem validation precludes (both endpoints have c ≥ 1, so
        // Σc ≥ 2 whenever edges ≥ 1).
        return 0;
    }
    usize::try_from(edges.div_ceil(half)).expect("bound fits usize")
}

/// Exponential (`O(2^n)`) exact `Γ''` for cross-checking [`lb3`].
///
/// # Panics
///
/// Panics if the instance has more than 20 disks.
#[must_use]
pub fn lb3_bruteforce(problem: &MigrationProblem) -> usize {
    let g = problem.graph();
    let n = g.num_nodes();
    assert!(n <= 20, "brute-force Γ'' is exponential; use lb3() instead");
    let mut best = 0usize;
    for mask in 1u32..(1u32 << n) {
        let subset: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        best = best.max(evaluate_floored(problem, &subset));
    }
    best
}

/// The sharpest lower bound available: `max(Δ', Γ', Γ'')`.
#[must_use]
pub fn lower_bound_sharp(problem: &MigrationProblem) -> usize {
    lower_bound(problem).max(lb3(problem))
}

/// Exponential (`O(2^n)`) reference for `Γ'`; used to cross-check
/// [`lb2`] in tests and experiments on small instances.
///
/// # Panics
///
/// Panics if the instance has more than 20 disks.
#[must_use]
pub fn lb2_bruteforce(problem: &MigrationProblem) -> usize {
    let g = problem.graph();
    let n = g.num_nodes();
    assert!(n <= 20, "brute-force Γ' is exponential; use lb2() instead");
    let caps = problem.capacities();
    let mut best = 0usize;
    for mask in 1u32..(1u32 << n) {
        let mut cap_sum = 0u64;
        for v in 0..n {
            if mask & (1 << v) != 0 {
                cap_sum += u64::from(caps.get(NodeId::new(v)));
            }
        }
        if cap_sum == 0 {
            continue;
        }
        let mut edges = 0u64;
        for (_, ep) in g.edges() {
            if mask & (1 << ep.u.index()) != 0 && mask & (1 << ep.v.index()) != 0 {
                edges += 1;
            }
        }
        if edges == 0 {
            continue;
        }
        best = best.max(usize::try_from((2 * edges).div_ceil(cap_sum)).expect("fits"));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capacities;
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph, star_multigraph};
    use dmig_graph::Multigraph;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_instance_bounds_are_zero() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(3), 2).unwrap();
        assert_eq!(lb1(&p), 0);
        assert_eq!(lb2(&p), 0);
        assert!(lb2_witness(&p).is_none());
        assert_eq!(lower_bound(&p), 0);
    }

    #[test]
    fn fig2_lower_bounds() {
        // K3 with M parallel edges. c=1: Δ' = 2M, Γ' = ⌈6M/3⌉ = 2M... and
        // OPT is 3M (odd cycle): the bounds are not tight here, exactly the
        // slack the paper's general algorithm fights.
        let m = 4;
        let p = MigrationProblem::uniform(complete_multigraph(3, m), 1).unwrap();
        assert_eq!(lb1(&p), 2 * m);
        assert_eq!(lb2(&p), 2 * m);
        // c=2: degrees 2M → Δ' = M and Γ' = ⌈6M/6⌉ = M; §IV achieves
        // exactly this (2M transfer rounds of the motivating example are
        // M graph-rounds of 2 parallel transfers... see the even solver
        // tests for the end-to-end check).
        let p2 = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
        assert_eq!(lb1(&p2), m);
        assert_eq!(lb2(&p2), m);
    }

    #[test]
    fn heterogeneous_capacities() {
        let p = MigrationProblem::new(
            complete_multigraph(3, 1),
            Capacities::from_vec(vec![1, 2, 2]),
        )
        .unwrap();
        // Δ' = max(⌈2/1⌉, ⌈2/2⌉) = 2; Γ' = ⌈6/5⌉ = 2.
        assert_eq!(lb1(&p), 2);
        assert_eq!(lb2(&p), 2);
    }

    #[test]
    fn gamma_never_exceeds_delta() {
        // 2|E(S)| = Σ_{v∈S} d_v(S) ≤ Σ d_v, and by the mediant inequality
        // Σd_v / Σc_v ≤ max d_v/c_v, so Γ' ≤ Δ' on every instance (the
        // paper states the inequality for even c_v; it is in fact
        // unconditional). Exercise it across structured families.
        let cases: Vec<MigrationProblem> = vec![
            MigrationProblem::uniform(complete_multigraph(5, 3), 4).unwrap(),
            MigrationProblem::uniform(complete_multigraph(3, 2), 3).unwrap(),
            MigrationProblem::uniform(cycle_multigraph(5, 2), 3).unwrap(),
            MigrationProblem::new(
                complete_multigraph(4, 3),
                Capacities::from_vec(vec![9, 1, 3, 5]),
            )
            .unwrap(),
        ];
        for p in &cases {
            assert!(lb2(p) <= lb1(p), "Γ' > Δ' on {p}");
            assert_eq!(lb2(p), lb2_bruteforce(p));
        }
    }

    #[test]
    fn lb2_matches_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..25 {
            let n = rng.gen_range(2..9);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..25) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            let caps: Capacities = (0..n).map(|_| rng.gen_range(1..5u32)).collect();
            let Ok(p) = MigrationProblem::new(g, caps) else {
                continue;
            };
            assert_eq!(lb2(&p), lb2_bruteforce(&p), "mismatch on {p}");
        }
    }

    #[test]
    fn witness_is_consistent() {
        let p = MigrationProblem::uniform(star_multigraph(4, 2), 2).unwrap();
        let w = lb2_witness(&p).unwrap();
        assert_eq!(
            w.bound,
            usize::try_from((2 * w.internal_edges).div_ceil(w.capacity_sum)).unwrap()
        );
        assert!(!w.nodes.is_empty());
    }

    #[test]
    fn lower_bound_is_max() {
        let p = MigrationProblem::uniform(cycle_multigraph(5, 3), 2).unwrap();
        assert_eq!(lower_bound(&p), lb1(&p).max(lb2(&p)));
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn bruteforce_guards_size() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(21), 1).unwrap();
        let _ = lb2_bruteforce(&p);
    }

    #[test]
    fn lb3_closes_the_odd_cycle_gap() {
        // K3 at c=1: Δ' = Γ' = 2 but OPT = 3; the integral Γ'' sees it.
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap();
        assert_eq!(lower_bound(&p), 2);
        assert_eq!(lb3(&p), 3);
        assert_eq!(lower_bound_sharp(&p), 3);
        // Same for every odd cycle at c=1... the bound gives ⌈n/⌊n/2⌋⌉ = 3.
        for n in [5usize, 7, 9] {
            let p = MigrationProblem::uniform(cycle_multigraph(n, 1), 1).unwrap();
            assert_eq!(lb3(&p), 3, "C{n}");
        }
        // And scaled: K3 with m parallel edges at c=1: Γ'' = 3m = OPT.
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 1).unwrap();
        assert_eq!(lb3(&p), 12);
    }

    #[test]
    fn lb3_heuristic_is_sound_and_often_exact() {
        let mut rng = StdRng::seed_from_u64(0x3333);
        let mut exact_hits = 0usize;
        let mut cases = 0usize;
        for _ in 0..25 {
            let n = rng.gen_range(2..9);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..20) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..n).map(|_| rng.gen_range(1..4u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            let heur = lb3(&p);
            let exact = lb3_bruteforce(&p);
            assert!(heur <= exact, "heuristic must stay a valid (under)estimate");
            assert!(heur >= lb2(&p), "Γ'' dominates Γ' on the witness set");
            cases += 1;
            exact_hits += usize::from(heur == exact);
        }
        assert!(
            exact_hits * 10 >= cases * 7,
            "heuristic exact on ≥70%: {exact_hits}/{cases}"
        );
    }

    #[test]
    fn lb3_never_exceeds_makespan_of_any_solver() {
        use crate::solver::all_solvers;
        let p = MigrationProblem::uniform(complete_multigraph(5, 2), 3).unwrap();
        let sharp = lower_bound_sharp(&p);
        for solver in all_solvers() {
            if let Ok(s) = solver.solve(&p) {
                assert!(
                    s.makespan() >= sharp,
                    "{} produced {} rounds below the sharp bound {sharp}",
                    solver.name(),
                    s.makespan()
                );
            }
        }
    }

    #[test]
    fn lb3_empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(2), 1).unwrap();
        assert_eq!(lb3(&p), 0);
        assert_eq!(lower_bound_sharp(&p), 0);
    }
}
