//! Migration schedules: rounds of simultaneous transfers.

use core::fmt;

use dmig_graph::{EdgeId, NodeId};

use crate::MigrationProblem;

/// Errors detected when validating a [`MigrationSchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// An item appears in more than one round.
    DuplicateItem {
        /// The duplicated edge.
        item: EdgeId,
    },
    /// An item never migrates.
    MissingItem {
        /// The missing edge.
        item: EdgeId,
    },
    /// An item id does not exist in the instance.
    UnknownItem {
        /// The foreign edge.
        item: EdgeId,
    },
    /// A round loads a disk beyond its transfer constraint.
    OverloadedDisk {
        /// The round index.
        round: usize,
        /// The overloaded disk.
        disk: NodeId,
        /// Transfers scheduled for the disk in that round.
        load: usize,
        /// Its constraint `c_v`.
        capacity: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::DuplicateItem { item } => {
                write!(f, "item {item} is scheduled more than once")
            }
            ScheduleError::MissingItem { item } => write!(f, "item {item} is never scheduled"),
            ScheduleError::UnknownItem { item } => {
                write!(f, "item {item} does not exist in the instance")
            }
            ScheduleError::OverloadedDisk {
                round,
                disk,
                load,
                capacity,
            } => write!(
                f,
                "round {round} loads disk {disk} with {load} transfers, constraint is {capacity}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A data-migration schedule: an ordered list of rounds, each a set of
/// items (edges) transferred simultaneously.
///
/// A schedule is *feasible* for a [`MigrationProblem`] when every item is
/// scheduled exactly once and no round loads a disk `v` with more than
/// `c_v` transfers — checked by [`MigrationSchedule::validate`].
///
/// # Example
///
/// ```
/// use dmig_core::{MigrationProblem, MigrationSchedule};
/// use dmig_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
/// let p = MigrationProblem::uniform(g, 1)?;
/// let s = MigrationSchedule::from_rounds(vec![
///     vec![0.into()],
///     vec![1.into()],
/// ]);
/// s.validate(&p)?;
/// assert_eq!(s.makespan(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationSchedule {
    rounds: Vec<Vec<EdgeId>>,
}

impl MigrationSchedule {
    /// Wraps explicit rounds.
    #[must_use]
    pub fn from_rounds(rounds: Vec<Vec<EdgeId>>) -> Self {
        MigrationSchedule { rounds }
    }

    /// Builds a schedule from an edge coloring: color class `c` becomes
    /// round `c`. Empty classes produce empty rounds until trimmed.
    #[must_use]
    pub fn from_coloring(coloring: &dmig_color::EdgeColoring) -> Self {
        let mut s = MigrationSchedule {
            rounds: coloring.classes(),
        };
        s.trim_empty_rounds();
        s
    }

    /// Number of rounds (the schedule makespan in the unit-size model).
    #[inline]
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.rounds.len()
    }

    /// The rounds, in execution order.
    #[inline]
    #[must_use]
    pub fn rounds(&self) -> &[Vec<EdgeId>] {
        &self.rounds
    }

    /// Total number of scheduled item transfers.
    #[must_use]
    pub fn num_items(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Removes empty rounds (preserving relative order of the rest).
    pub fn trim_empty_rounds(&mut self) {
        self.rounds.retain(|r| !r.is_empty());
    }

    /// Checks feasibility against `problem`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: duplicated/missing/unknown items
    /// or a round that overloads a disk beyond `c_v`.
    pub fn validate(&self, problem: &MigrationProblem) -> Result<(), ScheduleError> {
        let g = problem.graph();
        let m = g.num_edges();
        let mut seen = vec![false; m];
        for round in &self.rounds {
            for &item in round {
                if item.index() >= m {
                    return Err(ScheduleError::UnknownItem { item });
                }
                if seen[item.index()] {
                    return Err(ScheduleError::DuplicateItem { item });
                }
                seen[item.index()] = true;
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::MissingItem {
                item: EdgeId::new(i),
            });
        }
        let mut load = vec![0usize; g.num_nodes()];
        for (round_idx, round) in self.rounds.iter().enumerate() {
            load.iter_mut().for_each(|l| *l = 0);
            for &item in round {
                let ep = g.endpoints(item);
                load[ep.u.index()] += 1;
                load[ep.v.index()] += 1;
            }
            for v in g.nodes() {
                let cap = problem.capacities().get(v) as usize;
                if load[v.index()] > cap {
                    return Err(ScheduleError::OverloadedDisk {
                        round: round_idx,
                        disk: v,
                        load: load[v.index()],
                        capacity: cap,
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-round load of disk `v` (how many of its transfers run in each
    /// round) — useful for utilization metrics.
    #[must_use]
    pub fn disk_loads(&self, problem: &MigrationProblem, v: NodeId) -> Vec<usize> {
        let g = problem.graph();
        self.rounds
            .iter()
            .map(|round| {
                round
                    .iter()
                    .filter(|&&e| g.endpoints(e).contains(v))
                    .count()
            })
            .collect()
    }

    /// Sum over all items of the (1-based) round in which they complete —
    /// the *total completion time* objective studied by Kim [J. Alg. '05]
    /// and Gandhi et al. [ICALP '04] as an alternative to makespan.
    #[must_use]
    pub fn total_completion_time(&self) -> usize {
        self.rounds
            .iter()
            .enumerate()
            .map(|(i, round)| (i + 1) * round.len())
            .sum()
    }

    /// Reorders rounds so larger rounds run first, which minimizes
    /// [`MigrationSchedule::total_completion_time`] over all permutations
    /// of a fixed round partition (an exchange argument: swapping a
    /// smaller-earlier/larger-later pair never increases the sum).
    /// Makespan and feasibility are unaffected.
    pub fn order_rounds_for_completion(&mut self) {
        self.rounds.sort_by_key(|r| std::cmp::Reverse(r.len()));
    }

    /// Sum over disks of the (1-based) round after which each disk is
    /// done migrating — the "sum of disk completion times" objective of
    /// Kim [J. Alg. '05] / Gandhi et al. [WAOA '04] (§II), which matters
    /// when a disk returns to serving full production traffic as soon as
    /// its own transfers finish. Idle disks contribute 0.
    #[must_use]
    pub fn total_disk_completion_time(&self, problem: &MigrationProblem) -> usize {
        let g = problem.graph();
        let mut last_round = vec![0usize; g.num_nodes()];
        for (i, round) in self.rounds.iter().enumerate() {
            for &e in round {
                let ep = g.endpoints(e);
                last_round[ep.u.index()] = i + 1;
                last_round[ep.v.index()] = i + 1;
            }
        }
        last_round.iter().sum()
    }

    /// Greedy post-compaction: tries to move every item of the *last*
    /// rounds into earlier rounds with spare capacity, repeatedly, then
    /// drops emptied rounds. Never increases the makespan; useful for
    /// tightening baseline schedules (the exact and §IV solvers are
    /// already tight). Returns how many items moved.
    pub fn compact_rounds(&mut self, problem: &MigrationProblem) -> usize {
        let g = problem.graph();
        let n = g.num_nodes();
        let k = self.rounds.len();
        if k <= 1 {
            return 0;
        }
        // Residual capacity per (round, disk).
        let mut residual = vec![0i64; k * n];
        for (r, round) in self.rounds.iter().enumerate() {
            for v in g.nodes() {
                residual[r * n + v.index()] = i64::from(problem.capacities().get(v));
            }
            for &e in round {
                let ep = g.endpoints(e);
                residual[r * n + ep.u.index()] -= 1;
                residual[r * n + ep.v.index()] -= 1;
            }
        }
        let mut moved = 0usize;
        for src in (1..k).rev() {
            let items = std::mem::take(&mut self.rounds[src]);
            let mut keep = Vec::with_capacity(items.len());
            for e in items {
                let ep = g.endpoints(e);
                let dst = (0..src).find(|&r| {
                    residual[r * n + ep.u.index()] > 0 && residual[r * n + ep.v.index()] > 0
                });
                match dst {
                    Some(r) => {
                        residual[r * n + ep.u.index()] -= 1;
                        residual[r * n + ep.v.index()] -= 1;
                        residual[src * n + ep.u.index()] += 1;
                        residual[src * n + ep.v.index()] += 1;
                        self.rounds[r].push(e);
                        moved += 1;
                    }
                    None => keep.push(e),
                }
            }
            self.rounds[src] = keep;
        }
        self.trim_empty_rounds();
        moved
    }
}

impl fmt::Display for MigrationSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule({} rounds, {} transfers)",
            self.makespan(),
            self.num_items()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::GraphBuilder;

    fn k3_problem() -> MigrationProblem {
        MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap()
    }

    #[test]
    fn valid_three_round_triangle() {
        let p = k3_problem();
        let s =
            MigrationSchedule::from_rounds(vec![vec![0.into()], vec![1.into()], vec![2.into()]]);
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 3);
        assert_eq!(s.num_items(), 3);
    }

    #[test]
    fn detects_duplicate() {
        let p = k3_problem();
        let s = MigrationSchedule::from_rounds(vec![vec![0.into()], vec![0.into()]]);
        assert!(matches!(
            s.validate(&p),
            Err(ScheduleError::DuplicateItem { .. })
        ));
    }

    #[test]
    fn detects_missing() {
        let p = k3_problem();
        let s = MigrationSchedule::from_rounds(vec![vec![0.into()], vec![1.into()]]);
        assert_eq!(
            s.validate(&p),
            Err(ScheduleError::MissingItem {
                item: EdgeId::new(2)
            })
        );
    }

    #[test]
    fn detects_unknown() {
        let p = k3_problem();
        let s = MigrationSchedule::from_rounds(vec![vec![7.into()]]);
        assert!(matches!(
            s.validate(&p),
            Err(ScheduleError::UnknownItem { .. })
        ));
    }

    #[test]
    fn detects_overload() {
        let p = k3_problem();
        // All three triangle edges in one round: each disk degree 2 > c=1.
        let s = MigrationSchedule::from_rounds(vec![vec![0.into(), 1.into(), 2.into()]]);
        let err = s.validate(&p).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::OverloadedDisk {
                round: 0,
                load: 2,
                capacity: 1,
                ..
            }
        ));
    }

    #[test]
    fn capacity_two_allows_triangle_in_two_rounds() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let s = MigrationSchedule::from_rounds(vec![vec![0.into(), 1.into(), 2.into()]]);
        s.validate(&p).unwrap();
    }

    #[test]
    fn from_coloring_groups_rounds() {
        use dmig_color::EdgeColoring;
        let mut c = EdgeColoring::uncolored(3);
        c.set(0.into(), 0);
        c.set(1.into(), 2); // color 1 left empty
        c.set(2.into(), 0);
        let s = MigrationSchedule::from_coloring(&c);
        assert_eq!(s.makespan(), 2, "empty classes trimmed");
        assert_eq!(s.num_items(), 3);
    }

    #[test]
    fn disk_loads_per_round() {
        let g = GraphBuilder::new().edge(0, 1).edge(0, 2).build();
        let p = MigrationProblem::uniform(g, 2).unwrap();
        let s = MigrationSchedule::from_rounds(vec![vec![0.into(), 1.into()]]);
        s.validate(&p).unwrap();
        assert_eq!(s.disk_loads(&p, 0.into()), vec![2]);
        assert_eq!(s.disk_loads(&p, 1.into()), vec![1]);
    }

    #[test]
    fn completion_time_counts_late_items_more() {
        let s = MigrationSchedule::from_rounds(vec![vec![0.into(), 1.into()], vec![2.into()]]);
        // 2 items finish at round 1, one at round 2: 2·1 + 1·2 = 4.
        assert_eq!(s.total_completion_time(), 4);
    }

    #[test]
    fn ordering_rounds_minimizes_completion() {
        let mut s = MigrationSchedule::from_rounds(vec![
            vec![0.into()],
            vec![1.into(), 2.into(), 3.into()],
        ]);
        assert_eq!(s.total_completion_time(), 1 + 3 * 2);
        s.order_rounds_for_completion();
        assert_eq!(s.total_completion_time(), 3 + 2);
        assert_eq!(s.makespan(), 2);
    }

    #[test]
    fn disk_completion_time_tracks_last_participation() {
        // Edges: (0,1) in round 1, (1,2) in round 2; disk 3 idle.
        let g = GraphBuilder::new().nodes(4).edge(0, 1).edge(1, 2).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = MigrationSchedule::from_rounds(vec![vec![0.into()], vec![1.into()]]);
        // disk 0 done after round 1, disks 1 and 2 after round 2, disk 3 idle.
        assert_eq!(s.total_disk_completion_time(&p), (1 + 2 + 2));
    }

    #[test]
    fn compaction_merges_sparse_rounds() {
        // Two independent edges scheduled wastefully in two rounds.
        let g = GraphBuilder::new().edge(0, 1).edge(2, 3).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let mut s = MigrationSchedule::from_rounds(vec![vec![0.into()], vec![1.into()]]);
        s.validate(&p).unwrap();
        let moved = s.compact_rounds(&p);
        assert_eq!(moved, 1);
        assert_eq!(s.makespan(), 1);
        s.validate(&p).unwrap();
    }

    #[test]
    fn compaction_respects_capacity() {
        // Sharing node 1 at c=1: nothing can merge.
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let mut s = MigrationSchedule::from_rounds(vec![vec![0.into()], vec![1.into()]]);
        assert_eq!(s.compact_rounds(&p), 0);
        assert_eq!(s.makespan(), 2);
        s.validate(&p).unwrap();
    }

    #[test]
    fn empty_schedule_for_empty_problem() {
        let p = MigrationProblem::uniform(dmig_graph::Multigraph::with_nodes(2), 1).unwrap();
        let s = MigrationSchedule::default();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.to_string(), "schedule(0 rounds, 0 transfers)");
    }
}
