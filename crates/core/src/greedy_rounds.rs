//! First-fit greedy round packing — a natural systems baseline.
//!
//! Repeatedly build a maximal feasible round: sweep the still-unscheduled
//! items and admit each one whose two disks still have residual capacity in
//! the current round. This is what a pragmatic storage controller with no
//! theory does; experiments E5 measures how far it lands from the paper's
//! algorithms.

use dmig_graph::EdgeId;

use crate::{MigrationProblem, MigrationSchedule};

/// Schedules by repeatedly packing maximal capacity-feasible rounds
/// (first-fit in edge-id order).
///
/// Always terminates with a feasible schedule: every sweep schedules at
/// least one remaining item (both endpoints start each round with
/// `c_v ≥ 1`).
///
/// # Example
///
/// ```
/// use dmig_core::{greedy_rounds::solve_greedy, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2)?;
/// let s = solve_greedy(&p);
/// s.validate(&p)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn solve_greedy(problem: &MigrationProblem) -> MigrationSchedule {
    let g = problem.graph();
    let caps = problem.capacities();
    let mut pending: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
    let mut rounds: Vec<Vec<EdgeId>> = Vec::new();
    let mut residual = vec![0u32; g.num_nodes()];

    while !pending.is_empty() {
        for v in g.nodes() {
            residual[v.index()] = caps.get(v);
        }
        let mut round = Vec::new();
        let mut rest = Vec::with_capacity(pending.len());
        for e in pending {
            let ep = g.endpoints(e);
            if residual[ep.u.index()] > 0 && residual[ep.v.index()] > 0 {
                residual[ep.u.index()] -= 1;
                residual[ep.v.index()] -= 1;
                round.push(e);
            } else {
                rest.push(e);
            }
        }
        debug_assert!(!round.is_empty(), "a maximal round is never empty");
        rounds.push(round);
        pending = rest;
    }
    MigrationSchedule::from_rounds(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounds, Capacities};
    use dmig_graph::builder::{complete_multigraph, star_multigraph};
    use dmig_graph::Multigraph;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(2), 1).unwrap();
        assert_eq!(solve_greedy(&p).makespan(), 0);
    }

    #[test]
    fn star_is_scheduled_optimally() {
        // All items share the hub: greedy packs exactly c_hub per round.
        let p = MigrationProblem::new(
            star_multigraph(6, 1),
            Capacities::from_vec(vec![3, 1, 1, 1, 1, 1, 1]),
        )
        .unwrap();
        let s = solve_greedy(&p);
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 2); // ⌈6/3⌉
    }

    #[test]
    fn feasible_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0x96EED);
        for _ in 0..30 {
            let n = rng.gen_range(2..12);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..50) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..n).map(|_| rng.gen_range(1..5u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            let s = solve_greedy(&p);
            s.validate(&p).unwrap();
            assert!(s.makespan() >= bounds::lower_bound(&p));
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_but_bounded() {
        let p = MigrationProblem::uniform(complete_multigraph(5, 3), 2).unwrap();
        let s = solve_greedy(&p);
        s.validate(&p).unwrap();
        // Loose sanity envelope: never worse than one item per round.
        assert!(s.makespan() <= p.num_items());
    }
}
