//! The optimal migration schedule for even transfer constraints (§IV).
//!
//! When every `c_v` is even the paper gives a polynomial-time algorithm
//! producing exactly `Δ' = max_v ⌈d_v / c_v⌉` rounds (Theorem 4.1):
//!
//! 1. **Pad** the transfer graph so every node has degree exactly
//!    `c_v · Δ'`: self-loops while the deficit is ≥ 2, then pair up the
//!    (evenly many) nodes still one short with dummy edges.
//! 2. **Orient** along Euler circuits (all degrees even since `c_v` is):
//!    every node gets in-degree = out-degree = `c_v · Δ' / 2`.
//! 3. **Bipartize**: node `v` becomes `v_out`/`v_in`; an oriented edge
//!    `u → v` becomes `(u_out, v_in)`.
//! 4. **Decompose**: extract `Δ'` successive `c_v/2`-regular
//!    degree-constrained subgraphs by max-flow (the Fig. 3 network;
//!    feasibility by Lemma 4.1/4.2).
//! 5. Each extracted subgraph, minus padding, is one round: at most
//!    `c_v/2 + c_v/2 = c_v` transfers touch `v` (Lemma 4.3).

use std::time::Instant;

use dmig_flow::pool::{self, ObjectPool};
use dmig_flow::quota_round_partition;
use dmig_graph::euler::{orient_csr_parallel, OrientScratch};
use dmig_graph::{CsrAdjacency, EdgeId, Endpoints, NodeId};

use crate::{MigrationProblem, MigrationSchedule, SolveError};

/// Reusable workspace for one `solve_even` call: the padded CSR overlay,
/// the padding edge list, and the orientation scratch. Pooled process-wide
/// so steady-state solves (component workers, the simulator's replanning
/// loop) stop cloning the transfer graph and re-allocating adjacency.
#[derive(Debug, Default)]
struct EvenScratch {
    /// Padded incidence structure, overlaid via
    /// [`CsrAdjacency::rebuild_padded`] — the multigraph itself is never
    /// cloned.
    csr: CsrAdjacency,
    /// Padding edges: per-node self-loops, then deficient-pair dummies.
    pad: Vec<Endpoints>,
    /// Nodes still one unit short after self-loop padding.
    deficient: Vec<NodeId>,
    orient: OrientScratch,
    /// Oriented arcs of H, fed to the quota partitioner.
    arcs: Vec<(usize, usize)>,
}

static EVEN_SCRATCH: ObjectPool<EvenScratch> = ObjectPool::new();

/// Padded-edge floor below which orientation never recruits extra workers:
/// thread spawns cost tens of microseconds, and orienting this many edges
/// is cheaper than one spawn.
const PARALLEL_ORIENT_MIN_EDGES: usize = 1 << 12;

/// Computes an optimal schedule (exactly `Δ'` rounds) for an instance whose
/// transfer constraints are all even.
///
/// # Errors
///
/// Returns [`SolveError::OddCapacity`] if some disk with transfers has an
/// odd constraint, or [`SolveError::Internal`] if an internal invariant is
/// violated (a bug).
///
/// # Example
///
/// ```
/// use dmig_core::{even::solve_even, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2)?;
/// let s = solve_even(&p)?;
/// s.validate(&p)?;
/// assert_eq!(s.makespan(), p.delta_prime()); // optimal: Theorem 4.1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_even(problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
    let g = problem.graph();
    let caps = problem.capacities();
    for v in g.nodes() {
        let c = caps.get(v);
        if g.degree(v) > 0 && c % 2 != 0 {
            return Err(SolveError::OddCapacity {
                node: v,
                capacity: c,
            });
        }
    }

    let delta_prime = problem.delta_prime();
    if delta_prime == 0 {
        return Ok(MigrationSchedule::default());
    }
    let _span = dmig_obs::span_labeled("solve_even", || {
        format!(
            "n={} m={} delta_prime={delta_prime}",
            g.num_nodes(),
            g.num_edges()
        )
    });

    let mut scratch = EVEN_SCRATCH.acquire();

    let pad_span = dmig_obs::span("solve_even.pad");
    // Step 1: pad to degree exactly c_v·Δ' at every node that matters —
    // as an *overlay*: the padding edges are listed separately and scattered
    // on top of `g`'s incidence structure by `rebuild_padded`, so the
    // multigraph is never cloned. Nodes with zero capacity are necessarily
    // isolated (validated) and get target = degree = 0.
    scratch.pad.clear();
    scratch.deficient.clear();
    for v in g.nodes() {
        let d = g.degree(v);
        // Branchless target: idle disks (no capacity or no transfers) take
        // no part in the migration, so their target collapses to d (= 0
        // deficit) via the mask instead of a skip branch.
        let active = usize::from(d != 0) & usize::from(caps.get(v) != 0);
        let t = active * caps.get(v) as usize * delta_prime + (1 - active) * d;
        debug_assert!(d <= t, "Δ' definition guarantees d_v ≤ c_v·Δ'");
        let deficit = t - d;
        // Self-loops fix the deficit 2 at a time...
        for _ in 0..deficit / 2 {
            scratch.pad.push(Endpoints { u: v, v });
        }
        // ...leaving the odd-deficit nodes exactly 1 short.
        if deficit % 2 == 1 {
            scratch.deficient.push(v);
        }
    }
    // c_v·Δ' is even for every node (c_v even), and the total degree is
    // even, so the deficit-1 nodes pair up.
    if scratch.deficient.len() % 2 != 0 {
        return Err(SolveError::Internal(format!(
            "odd number of deficient nodes after padding: {}",
            scratch.deficient.len()
        )));
    }
    for pair in scratch.deficient.chunks(2) {
        scratch.pad.push(Endpoints {
            u: pair[0],
            v: pair[1],
        });
    }
    scratch.csr.rebuild_padded(g, &scratch.pad);
    debug_assert!(g.nodes().all(|v| {
        let active = g.degree(v) > 0 && caps.get(v) > 0;
        !active || scratch.csr.degree(v) == caps.get(v) as usize * delta_prime
    }));
    drop(pad_span);

    // Step 2–3: Euler orientation → arcs of the bipartite graph H. Big
    // components hand the labeling walk to every extra worker the shared
    // budget will grant; the chunked orientation is byte-identical to the
    // serial one at any worker count, so the permit race never shows up in
    // the schedule.
    let orient_span = dmig_obs::span("solve_even.euler_orientation");
    let padded_edges = scratch.csr.num_edges();
    let permits = if padded_edges >= PARALLEL_ORIENT_MIN_EDGES {
        pool::budget().try_acquire_many(padded_edges / PARALLEL_ORIENT_MIN_EDGES)
    } else {
        Vec::new()
    };
    let orient_started = Instant::now();
    let EvenScratch {
        csr, orient, arcs, ..
    } = &mut scratch;
    let (orientation, stats) = orient_csr_parallel(csr, 1 + permits.len(), orient)
        .map_err(|e| SolveError::Internal(format!("euler orientation failed: {e}")))?;
    drop(permits);
    dmig_obs::counter_add(dmig_obs::keys::EULER_ORIENTATIONS, 1);
    dmig_obs::counter_add(dmig_obs::keys::EULER_CHUNKS, stats.chunks);
    dmig_obs::counter_add(dmig_obs::keys::EULER_STITCHES, stats.stitches);
    dmig_obs::counter_add(
        dmig_obs::keys::EULER_PAR_MS,
        orient_started.elapsed().as_millis() as u64,
    );
    drop(orient_span);
    let n = g.num_nodes();
    let original_edges = g.num_edges();

    // Oriented arcs of H. Arc position i is exactly padded edge id i, so no
    // separate arc → edge table is needed.
    arcs.clear();
    arcs.extend(orientation.iter().map(|(_, t, h)| (t.index(), h.index())));

    // Step 4–5: peel Δ' exact c_v/2-degree subgraphs.
    let half_quota: Vec<u32> = (0..n)
        .map(|v| {
            let v = NodeId::new(v);
            if g.degree(v) == 0 {
                0
            } else {
                caps.get(v) / 2
            }
        })
        .collect();
    // Divide-and-conquer decomposition: Euler splits halve the round count
    // in linear time, max flow runs only at the O(log Δ') odd levels.
    let decompose_span = dmig_obs::span("solve_even.decompose");
    let partition =
        quota_round_partition(n, arcs.as_slice(), &half_quota, &half_quota, delta_prime)
            .map_err(|e| SolveError::Internal(format!("round decomposition infeasible: {e}")))?;
    drop(decompose_span);
    debug_assert_eq!(partition.iter().map(Vec::len).sum::<usize>(), arcs.len());
    let _assemble_span = dmig_obs::span("solve_even.assemble");
    let rounds: Vec<Vec<EdgeId>> = partition
        .into_iter()
        .map(|selected| {
            selected
                .into_iter()
                .filter(|&pos| pos < original_edges)
                .map(EdgeId::new)
                .collect()
        })
        .collect();
    EVEN_SCRATCH.release(scratch);

    let mut schedule = MigrationSchedule::from_rounds(rounds);
    schedule.trim_empty_rounds();
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounds, Capacities};
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph, star_multigraph};
    use dmig_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_optimal(p: &MigrationProblem) {
        let s = solve_even(p).unwrap();
        s.validate(p).unwrap();
        assert_eq!(
            s.makespan(),
            p.delta_prime(),
            "Theorem 4.1: exactly Δ' rounds on {p}"
        );
        assert!(s.makespan() >= bounds::lower_bound(p));
    }

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(3), 2).unwrap();
        let s = solve_even(&p).unwrap();
        assert_eq!(s.makespan(), 0);
    }

    use dmig_graph::Multigraph;

    #[test]
    fn fig2_k3_families() {
        for m in [1usize, 2, 3, 5, 8] {
            let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
            check_optimal(&p);
            assert_eq!(p.delta_prime(), m);
        }
    }

    #[test]
    fn odd_capacity_rejected() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 3).unwrap();
        let err = solve_even(&p).unwrap_err();
        assert!(matches!(err, SolveError::OddCapacity { capacity: 3, .. }));
    }

    #[test]
    fn odd_capacity_on_isolated_disk_is_fine() {
        let g = GraphBuilder::new().nodes(3).parallel_edges(0, 1, 4).build();
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![2, 2, 1])).unwrap();
        check_optimal(&p);
    }

    #[test]
    fn heterogeneous_even_capacities() {
        let g = complete_multigraph(4, 3); // degrees 9
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![2, 4, 6, 2])).unwrap();
        // Δ' = ⌈9/2⌉ = 5.
        assert_eq!(p.delta_prime(), 5);
        check_optimal(&p);
    }

    #[test]
    fn structured_families() {
        check_optimal(&MigrationProblem::uniform(cycle_multigraph(7, 4), 2).unwrap());
        check_optimal(&MigrationProblem::uniform(star_multigraph(6, 3), 4).unwrap());
        check_optimal(&MigrationProblem::uniform(complete_multigraph(6, 2), 6).unwrap());
    }

    #[test]
    fn single_edge_minimal() {
        let p = MigrationProblem::uniform(GraphBuilder::new().edge(0, 1).build(), 2).unwrap();
        let s = solve_even(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 1);
    }

    #[test]
    fn randomized_even_instances_are_optimal() {
        let mut rng = StdRng::seed_from_u64(0xEEE);
        for _ in 0..40 {
            let n = rng.gen_range(2..14);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..60) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..n).map(|_| 2 * rng.gen_range(1..4u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            check_optimal(&p);
        }
    }

    #[test]
    fn disconnected_components_scheduled_together() {
        let g = GraphBuilder::new()
            .parallel_edges(0, 1, 4)
            .parallel_edges(2, 3, 2)
            .parallel_edges(4, 5, 6)
            .build();
        let p = MigrationProblem::uniform(g, 2).unwrap();
        check_optimal(&p); // Δ' = 3 from the 6-parallel pair
        assert_eq!(p.delta_prime(), 3);
    }
}
