//! Saia's 1.5-approximation baseline (paper §I–II).
//!
//! Split each disk `v` into `c_v` copies and distribute its incident
//! transfers evenly; the split graph has maximum degree
//! `Δ' = max ⌈d_v/c_v⌉`, and Shannon's theorem colors any multigraph with
//! `⌊3Δ/2⌋` colors, giving at most `⌊3Δ'/2⌋ ≤ 1.5·OPT` rounds. We color
//! the split graph with the Kempe-chain colorer, which stays inside the
//! Shannon envelope (and usually far below it).

use dmig_color::kempe::kempe_coloring;

use crate::split::split_round_robin;
use crate::{MigrationProblem, MigrationSchedule};

/// Report of a [`solve_saia`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaiaReport {
    /// The schedule produced.
    pub schedule: MigrationSchedule,
    /// Max degree of the split graph (`Δ' = LB1`).
    pub split_degree: usize,
    /// Shannon bound `⌊3Δ'/2⌋` the analysis promises.
    pub shannon_bound: usize,
}

/// Runs Saia's split-and-color baseline; the schedule length is at most
/// `⌊3·Δ'/2⌋` (Shannon), i.e. a 1.5-approximation.
///
/// # Example
///
/// ```
/// use dmig_core::{saia::solve_saia, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2)?;
/// let report = solve_saia(&p);
/// report.schedule.validate(&p)?;
/// assert!(report.schedule.makespan() <= report.shannon_bound.max(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn solve_saia(problem: &MigrationProblem) -> SaiaReport {
    let _span = dmig_obs::span_labeled("solve_saia", || format!("m={}", problem.num_items()));
    let split = {
        let _s = dmig_obs::span("saia.split");
        split_round_robin(problem)
    };
    let (coloring, _stats) = {
        let _s = dmig_obs::span("saia.color");
        kempe_coloring(&split.graph)
    };
    // Split-graph edge ids align with problem edge ids, so the coloring's
    // classes are directly the rounds.
    let schedule = MigrationSchedule::from_coloring(&coloring);
    let split_degree = split.max_degree();
    SaiaReport {
        schedule,
        split_degree,
        shannon_bound: dmig_color::shannon_bound(split_degree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounds, Capacities};
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph};
    use dmig_graph::Multigraph;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check(p: &MigrationProblem) -> usize {
        let report = solve_saia(p);
        report.schedule.validate(p).unwrap();
        assert!(
            report.schedule.makespan() <= report.shannon_bound.max(p.delta_prime()).max(1),
            "{} rounds breaks the Shannon envelope {} on {p}",
            report.schedule.makespan(),
            report.shannon_bound
        );
        assert!(report.schedule.makespan() >= bounds::lower_bound(p));
        report.schedule.makespan()
    }

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(2), 3).unwrap();
        assert_eq!(solve_saia(&p).schedule.makespan(), 0);
    }

    #[test]
    fn fig2_family_close_to_optimal() {
        for m in [1usize, 2, 4] {
            let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
            let rounds = check(&p);
            // OPT = m; Saia promises ≤ ⌊3m/2⌋.
            assert!(rounds <= 3 * m / 2 + 1);
        }
    }

    #[test]
    fn odd_capacities_supported() {
        let p = MigrationProblem::new(
            complete_multigraph(4, 3),
            Capacities::from_vec(vec![3, 1, 5, 2]),
        )
        .unwrap();
        check(&p);
    }

    #[test]
    fn randomized_within_envelope() {
        let mut rng = StdRng::seed_from_u64(0x5a1a);
        for _ in 0..30 {
            let n = rng.gen_range(2..12);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..50) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..n).map(|_| rng.gen_range(1..6u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            check(&p);
        }
    }

    #[test]
    fn report_exposes_split_degree() {
        let p = MigrationProblem::uniform(cycle_multigraph(5, 4), 2).unwrap();
        let r = solve_saia(&p);
        assert_eq!(r.split_degree, p.delta_prime());
        assert_eq!(r.shannon_bound, dmig_color::shannon_bound(r.split_degree));
    }
}
