//! The general solver for arbitrary transfer constraints (paper §V).
//!
//! The paper generalizes Sanders–Steurer multigraph edge coloring: keep a
//! partial coloring with `q` colors (each usable `c_v` times at disk `v`),
//! make progress with three structure-driven moves, and only grow `q` when
//! a *witness* certifies the current budget is (near-)exhausted. This
//! implementation keeps the same skeleton with practical counterparts:
//!
//! * **direct coloring** — a color missing at both endpoints (the trivial
//!   case of a balancing orbit, Lemma 5.1);
//! * **alternating-walk flips** — the paper's capacitated `ab`-paths
//!   (Def. 5.2): the two-color subgraph is no longer a union of simple
//!   paths (a color may repeat up to `c_v` times at a node), so walks are
//!   edge-disjoint but may revisit vertices; a flip is applied and
//!   *verified*, rolling back in the rare multi-visit overflow case;
//! * **shift moves** — uncolor an adjacent edge to admit the current one
//!   and recursively re-place the evicted edge (bounded depth): the
//!   practical counterpart of growing edge orbits (Def. 5.6, Lemma 5.4);
//! * **escalation** — when no move applies to any pending edge, the state
//!   is the paper's witness situation (Def. 5.7) and the color budget
//!   grows by one.
//!
//! Phase 2 of the paper (§V-C3) — coloring the sparse residue `G_0` by
//! node-splitting + Vizing — is available as an alternative residue
//! strategy ([`ResidueStrategy::SplitColor`]) and exercised by the
//! ablation experiments; escalation dominates it in schedule quality, as
//! the theory predicts (it exists for the analysis, not for practice).
//!
//! Starting budget is `LB1 = Δ'`; every escalation certifies a round the
//! lower bound cannot see, so `final_colors − max(Δ', Γ')` is a measured
//! upper bound on the optimality gap (experiment E4 tracks its `O(√OPT)`
//! shape).

use dmig_color::kempe::kempe_coloring;
use dmig_color::misra_gries::misra_gries_coloring;
use dmig_graph::{EdgeId, Multigraph, NodeId};

use crate::split::split_graph_round_robin;
use crate::{Capacities, MigrationProblem, MigrationSchedule};

/// How the solver finishes off edges that resist all recoloring moves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResidueStrategy {
    /// Grow the budget one color at a time and keep recoloring (the
    /// witness case of §V; best schedules).
    #[default]
    Escalate,
    /// Color the residue in one shot by node-splitting + Vizing/Kempe with
    /// fresh colors (the paper's Phase 2, §V-C3; used for ablation).
    SplitColor,
}

/// Order in which the solver first attempts pending edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Insertion (edge-id) order — deterministic baseline.
    #[default]
    Input,
    /// Heaviest first: descending endpoint degree-over-capacity pressure
    /// (`⌈d_u/c_u⌉ + ⌈d_v/c_v⌉`) — the fail-first heuristic; constrained
    /// edges get colored while the palette is still flexible.
    HeavyFirst,
}

/// Tuning knobs for [`solve_general_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneralConfig {
    /// Residue handling (default: escalate).
    pub residue_strategy: ResidueStrategy,
    /// Initial edge processing order (default: input order).
    pub edge_order: EdgeOrder,
    /// Maximum recursion depth of shift moves (orbit growth).
    pub shift_depth: usize,
    /// Evicted-edge candidates tried per shift level.
    pub shift_fanout: usize,
    /// Total recoloring work (alternating-walk steps + shift-tree nodes)
    /// spent per edge attempt. Bounds the otherwise super-polynomial
    /// effort the walk×shift machinery can burn on tight instances (fat
    /// triangles spend `Θ(m)` escalations, each sweeping every pending
    /// edge); exhausting the budget just fails the attempt and falls
    /// through to escalation.
    pub work_budget: u64,
}

impl Default for GeneralConfig {
    fn default() -> Self {
        GeneralConfig {
            residue_strategy: ResidueStrategy::Escalate,
            edge_order: EdgeOrder::Input,
            shift_depth: 4,
            shift_fanout: 4,
            work_budget: 20_000,
        }
    }
}

/// Counters describing how a [`solve_general`] run made progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeneralStats {
    /// Starting color budget (`LB1`).
    pub initial_colors: usize,
    /// Final number of colors (= schedule makespan before trimming).
    pub final_colors: usize,
    /// Edges colored directly.
    pub direct: usize,
    /// Edges colored after an alternating-walk flip.
    pub walk_flips: usize,
    /// Edges colored through a shift (orbit-growth) move.
    pub shifts: usize,
    /// Budget escalations (witness events).
    pub escalations: usize,
    /// Edges colored by the Phase-2 residue colorer (SplitColor only).
    pub residue_colored: usize,
}

/// Outcome of the general solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralReport {
    /// The feasible schedule.
    pub schedule: MigrationSchedule,
    /// Progress counters.
    pub stats: GeneralStats,
}

/// Solves an arbitrary-capacity instance with the default configuration.
///
/// # Example
///
/// ```
/// use dmig_core::{general::solve_general, bounds, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// let p = MigrationProblem::uniform(complete_multigraph(4, 3), 3)?;
/// let report = solve_general(&p);
/// report.schedule.validate(&p)?;
/// assert!(report.schedule.makespan() >= bounds::lower_bound(&p));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn solve_general(problem: &MigrationProblem) -> GeneralReport {
    solve_general_with(problem, &GeneralConfig::default())
}

/// Solves an arbitrary-capacity instance with explicit configuration.
#[must_use]
pub fn solve_general_with(problem: &MigrationProblem, config: &GeneralConfig) -> GeneralReport {
    let g = problem.graph();
    let m = g.num_edges();
    let _span = dmig_obs::span_labeled("solve_general", || format!("n={} m={m}", g.num_nodes()));
    let lb = problem.delta_prime();
    let mut stats = GeneralStats {
        initial_colors: lb.max(usize::from(m > 0)),
        ..Default::default()
    };
    if m == 0 {
        return GeneralReport {
            schedule: MigrationSchedule::default(),
            stats,
        };
    }

    let mut state = State::new(g, problem.capacities(), stats.initial_colors, config);
    let mut pending: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
    if config.edge_order == EdgeOrder::HeavyFirst {
        let caps = problem.capacities();
        let pressure = |v: dmig_graph::NodeId| g.degree(v).div_ceil(caps.get(v).max(1) as usize);
        pending.sort_by_key(|&e| {
            let ep = g.endpoints(e);
            std::cmp::Reverse(pressure(ep.u) + pressure(ep.v))
        });
    }

    loop {
        // Keep sweeping while any sweep makes progress.
        loop {
            let before = pending.len();
            pending.retain(|&e| !state.try_color_edge(e, &mut stats));
            if pending.is_empty() || pending.len() == before {
                break;
            }
        }
        if pending.is_empty() {
            break;
        }
        match config.residue_strategy {
            ResidueStrategy::Escalate => {
                state.add_color();
                stats.escalations += 1;
            }
            ResidueStrategy::SplitColor => {
                state.color_residue(&pending, &mut stats);
                pending.clear();
            }
        }
    }

    let mut coloring = dmig_color::EdgeColoring::uncolored(m);
    for (i, c) in state.color_of.iter().enumerate() {
        coloring.set(EdgeId::new(i), c.expect("all edges colored"));
    }
    stats.final_colors = coloring.num_colors() as usize;
    let schedule = MigrationSchedule::from_coloring(&coloring);
    dmig_obs::counter_add("general.direct", stats.direct as u64);
    dmig_obs::counter_add("general.walk_flips", stats.walk_flips as u64);
    dmig_obs::counter_add("general.shifts", stats.shifts as u64);
    dmig_obs::counter_add("general.escalations", stats.escalations as u64);
    dmig_obs::counter_add("general.residue_colored", stats.residue_colored as u64);
    GeneralReport { schedule, stats }
}

struct State<'a> {
    g: &'a Multigraph,
    caps: Vec<u32>,
    q: usize,
    /// `count[v][c]`: edges of color `c` incident to `v`.
    count: Vec<Vec<u32>>,
    /// `edges_at[v][c]`: those edges, for walk construction.
    edges_at: Vec<Vec<Vec<EdgeId>>>,
    color_of: Vec<Option<u32>>,
    /// Walk membership stamps (versioned to avoid clearing).
    walk_stamp: Vec<u32>,
    stamp: u32,
    /// Work units left for the current edge attempt (walk steps + shift
    /// nodes).
    work_left: u64,
    config: GeneralConfig,
}

impl<'a> State<'a> {
    fn new(g: &'a Multigraph, caps: &Capacities, q: usize, config: &GeneralConfig) -> Self {
        let n = g.num_nodes();
        State {
            g,
            caps: caps.as_slice().to_vec(),
            q,
            count: vec![vec![0; q]; n],
            edges_at: vec![vec![Vec::new(); q]; n],
            color_of: vec![None; g.num_edges()],
            walk_stamp: vec![0; g.num_edges()],
            stamp: 0,
            work_left: 0,
            config: *config,
        }
    }

    fn add_color(&mut self) {
        self.q += 1;
        for v in 0..self.g.num_nodes() {
            self.count[v].push(0);
            self.edges_at[v].push(Vec::new());
        }
    }

    fn cap(&self, v: NodeId) -> u32 {
        self.caps[v.index()]
    }

    fn is_missing(&self, v: NodeId, c: usize) -> bool {
        self.count[v.index()][c] < self.cap(v)
    }

    fn assign(&mut self, e: EdgeId, c: usize) {
        debug_assert!(self.color_of[e.index()].is_none());
        let ep = self.g.endpoints(e);
        debug_assert!(self.is_missing(ep.u, c) && self.is_missing(ep.v, c));
        self.count[ep.u.index()][c] += 1;
        self.count[ep.v.index()][c] += 1;
        self.edges_at[ep.u.index()][c].push(e);
        self.edges_at[ep.v.index()][c].push(e);
        self.color_of[e.index()] = Some(u32::try_from(c).expect("color id overflow"));
    }

    fn unassign(&mut self, e: EdgeId) -> usize {
        let c = self.color_of[e.index()]
            .take()
            .expect("unassign of uncolored edge") as usize;
        let ep = self.g.endpoints(e);
        self.count[ep.u.index()][c] -= 1;
        self.count[ep.v.index()][c] -= 1;
        for v in [ep.u, ep.v] {
            let list = &mut self.edges_at[v.index()][c];
            let pos = list
                .iter()
                .position(|&x| x == e)
                .expect("edge tracked at endpoint");
            list.swap_remove(pos);
        }
        c
    }

    fn try_color_edge(&mut self, e: EdgeId, stats: &mut GeneralStats) -> bool {
        let ep = self.g.endpoints(e);
        if self.try_direct(e) {
            stats.direct += 1;
            return true;
        }
        self.work_left = self.config.work_budget;
        if self.try_walks(e, ep.u, ep.v) {
            stats.walk_flips += 1;
            return true;
        }
        let mut in_progress = vec![e];
        if self.try_shift(e, self.config.shift_depth, &mut in_progress) {
            stats.shifts += 1;
            return true;
        }
        false
    }

    /// Consumes `cost` work units; returns false once the budget is gone.
    fn spend(&mut self, cost: u64) -> bool {
        if self.work_left < cost {
            self.work_left = 0;
            return false;
        }
        self.work_left -= cost;
        true
    }

    fn try_direct(&mut self, e: EdgeId) -> bool {
        let ep = self.g.endpoints(e);
        if let Some(c) = (0..self.q).find(|&c| self.is_missing(ep.u, c) && self.is_missing(ep.v, c))
        {
            self.assign(e, c);
            return true;
        }
        false
    }

    /// Alternating-walk flips for edge `e = (u, v)` (Def. 5.2): try every
    /// pair of a color `a` missing at `u` and `b` missing at `v`, flipping
    /// the `ab`-walk from `v` (or the `ba`-walk from `u`) to free a shared
    /// color.
    fn try_walks(&mut self, e: EdgeId, u: NodeId, v: NodeId) -> bool {
        let free_u: Vec<usize> = (0..self.q).filter(|&c| self.is_missing(u, c)).collect();
        let free_v: Vec<usize> = (0..self.q).filter(|&c| self.is_missing(v, c)).collect();
        for &a in &free_u {
            for &b in &free_v {
                if a == b {
                    continue; // would have been a direct coloring
                }
                if self.work_left == 0 {
                    return false;
                }
                // Free `a` at v by flipping the ab-walk from v.
                if self.attempt_flip(v, a, b, u, v) {
                    self.assign(e, a);
                    return true;
                }
                // Symmetric: free `b` at u by flipping the ba-walk from u.
                if self.attempt_flip(u, b, a, u, v) {
                    self.assign(e, b);
                    return true;
                }
            }
        }
        false
    }

    /// Builds and flips the `want/other`-walk from `start`, keeping the
    /// flip only if afterwards color `want` is missing at both `u` and `v`
    /// and no walk vertex exceeds its capacity. Returns whether the flip
    /// was kept.
    fn attempt_flip(
        &mut self,
        start: NodeId,
        want: usize,
        other: usize,
        u: NodeId,
        v: NodeId,
    ) -> bool {
        let walk = self.build_walk(start, want, other, u);
        if walk.is_empty() {
            return false;
        }
        self.flip(&walk, want, other);
        let ok = self.walk_feasible(&walk, want, other)
            && self.is_missing(u, want)
            && self.is_missing(v, want);
        if !ok {
            self.flip(&walk, want, other); // roll back (involutive)
        }
        ok
    }

    /// Edge-disjoint alternating walk from `start`, first edge colored
    /// `want`. Stops at the first vertex missing the next wanted color
    /// (so the final flipped-in color fits), preferring not to end at
    /// `avoid` where the flip would fill the target color.
    fn build_walk(
        &mut self,
        start: NodeId,
        want0: usize,
        other: usize,
        avoid: NodeId,
    ) -> Vec<EdgeId> {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut walk = Vec::new();
        let mut cur = start;
        // `want` is the color of the next edge to traverse; equivalently,
        // the walk's last edge (colored toggle(want)) flips *to* `want`,
        // so `want` is also the color the stop vertex would gain.
        let mut want = want0;
        loop {
            let can_stop = !walk.is_empty()
                && self.is_missing(cur, want)
                && !(cur == avoid && want == want0)
                && cur != start;
            if can_stop {
                return walk;
            }
            if !self.spend(1) {
                return Vec::new();
            }
            let next = self.edges_at[cur.index()][want]
                .iter()
                .copied()
                .find(|&f| self.walk_stamp[f.index()] != stamp);
            match next {
                Some(f) => {
                    self.walk_stamp[f.index()] = stamp;
                    walk.push(f);
                    cur = self.g.endpoints(f).other(cur);
                    want = if want == want0 { other } else { want0 };
                }
                None => {
                    // Cannot extend; stop here if the flipped-in color has
                    // room, otherwise abandon the walk.
                    if !walk.is_empty()
                        && self.is_missing(cur, want)
                        && !(cur == avoid && want == want0)
                    {
                        return walk;
                    }
                    return Vec::new();
                }
            }
        }
    }

    /// Swaps colors `a ↔ b` on every walk edge (two-phase; involutive).
    fn flip(&mut self, walk: &[EdgeId], a: usize, b: usize) {
        let recolored: Vec<(EdgeId, usize)> = walk
            .iter()
            .map(|&f| {
                let old = self.unassign(f);
                (f, if old == a { b } else { a })
            })
            .collect();
        for (f, new) in recolored {
            // Bypass assign()'s feasibility assert: transient overflow is
            // detected by walk_feasible and rolled back.
            let ep = self.g.endpoints(f);
            self.count[ep.u.index()][new] += 1;
            self.count[ep.v.index()][new] += 1;
            self.edges_at[ep.u.index()][new].push(f);
            self.edges_at[ep.v.index()][new].push(f);
            self.color_of[f.index()] = Some(u32::try_from(new).expect("color id overflow"));
        }
    }

    /// Post-flip feasibility of every vertex touched by the walk.
    fn walk_feasible(&self, walk: &[EdgeId], a: usize, b: usize) -> bool {
        walk.iter().all(|&f| {
            let ep = self.g.endpoints(f);
            [ep.u, ep.v].into_iter().all(|x| {
                self.count[x.index()][a] <= self.cap(x) && self.count[x.index()][b] <= self.cap(x)
            })
        })
    }

    /// Shift move (orbit growth): evict a colored edge adjacent to `e` to
    /// admit `e`, then re-place the evicted edge recursively.
    fn try_shift(&mut self, e: EdgeId, depth: usize, in_progress: &mut Vec<EdgeId>) -> bool {
        if depth == 0 || !self.spend(8) {
            return false;
        }
        let ep = self.g.endpoints(e);
        for (anchor, far) in [(ep.u, ep.v), (ep.v, ep.u)] {
            // Colors missing at `anchor` but full at `far`: evict one of
            // far's edges of that color.
            let candidates: Vec<usize> = (0..self.q)
                .filter(|&c| self.is_missing(anchor, c) && !self.is_missing(far, c))
                .collect();
            for c in candidates {
                let evictable: Vec<EdgeId> = self.edges_at[far.index()][c]
                    .iter()
                    .copied()
                    .filter(|f| *f != e && !in_progress.contains(f))
                    .take(self.config.shift_fanout)
                    .collect();
                for f in evictable {
                    self.unassign(f);
                    if !(self.is_missing(ep.u, c) && self.is_missing(ep.v, c)) {
                        self.assign(f, c);
                        continue;
                    }
                    self.assign(e, c);
                    in_progress.push(f);
                    let fep = self.g.endpoints(f);
                    let placed = self.try_direct(f)
                        || self.try_walks(f, fep.u, fep.v)
                        || self.try_shift(f, depth - 1, in_progress);
                    in_progress.pop();
                    if placed {
                        return true;
                    }
                    self.unassign(e);
                    self.assign(f, c);
                }
            }
        }
        false
    }

    /// Phase 2 (§V-C3): color the uncolored residue with fresh colors via
    /// node-splitting; Vizing (Misra–Gries) when the split is simple,
    /// Kempe chains otherwise.
    fn color_residue(&mut self, pending: &[EdgeId], stats: &mut GeneralStats) {
        let (residue, mapping) = self.g.edge_subgraph(pending);
        let caps = Capacities::from_vec(self.caps.clone());
        let split = split_graph_round_robin(&residue, &caps);
        let coloring = if split.graph.is_simple() {
            misra_gries_coloring(&split.graph)
        } else {
            kempe_coloring(&split.graph).0
        };
        let base = self.q;
        for _ in 0..coloring.num_colors() {
            self.add_color();
        }
        for (i, &orig) in mapping.iter().enumerate() {
            let c = base
                + coloring
                    .color(EdgeId::new(i))
                    .expect("residue coloring complete") as usize;
            self.assign(orig, c);
            stats.residue_colored += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph, star_multigraph};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Validates and returns (makespan, lower bound).
    fn check(p: &MigrationProblem) -> (usize, usize) {
        let report = solve_general(p);
        report.schedule.validate(p).unwrap();
        let lb = bounds::lower_bound(p);
        let rounds = report.schedule.makespan();
        assert!(rounds >= lb);
        // Hard envelope: never worse than the Saia/Shannon guarantee.
        let envelope = (3 * p.delta_prime()).div_ceil(2) + 1;
        assert!(
            rounds <= envelope.max(1),
            "{rounds} rounds exceeds 1.5-envelope {envelope} on {p}"
        );
        (rounds, lb)
    }

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(dmig_graph::Multigraph::with_nodes(2), 1).unwrap();
        let r = solve_general(&p);
        assert_eq!(r.schedule.makespan(), 0);
        assert_eq!(r.stats.final_colors, 0);
    }

    #[test]
    fn homogeneous_triangle_needs_three() {
        // K3 with c=1: LB = 2 but OPT = 3 (odd cycle) — the solver must
        // escalate exactly once.
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap();
        let (rounds, lb) = check(&p);
        assert_eq!(lb, 2);
        assert_eq!(rounds, 3);
    }

    #[test]
    fn fig2_even_capacities_hit_lb() {
        for m in [1usize, 2, 4] {
            let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
            let (rounds, _) = check(&p);
            assert_eq!(rounds, m, "even-capacity instances should reach Δ'");
        }
    }

    #[test]
    fn odd_capacities_near_lb() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 3), 3).unwrap();
        let (rounds, lb) = check(&p);
        assert!(rounds <= lb + 1, "small instance: at most one extra round");
    }

    #[test]
    fn heterogeneous_mixed_parity() {
        let p = MigrationProblem::new(
            complete_multigraph(5, 2),
            crate::Capacities::from_vec(vec![1, 2, 3, 4, 5]),
        )
        .unwrap();
        let (rounds, lb) = check(&p);
        assert!(rounds <= lb + 2);
    }

    #[test]
    fn structured_families() {
        check(&MigrationProblem::uniform(cycle_multigraph(9, 3), 2).unwrap());
        check(&MigrationProblem::uniform(star_multigraph(7, 3), 3).unwrap());
        check(&MigrationProblem::uniform(complete_multigraph(6, 4), 5).unwrap());
    }

    #[test]
    fn randomized_instances_stay_near_lb() {
        let mut rng = StdRng::seed_from_u64(0x6E6E);
        let mut total_excess = 0usize;
        let mut cases = 0usize;
        for _ in 0..40 {
            let n = rng.gen_range(2..14);
            let mut g = dmig_graph::Multigraph::with_nodes(n);
            for _ in 0..rng.gen_range(1..70) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: crate::Capacities = (0..n).map(|_| rng.gen_range(1..6u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            let (rounds, lb) = check(&p);
            total_excess += rounds - lb;
            cases += 1;
        }
        // The 1+o(1) promise: average excess far below the 0.5·LB the
        // baseline would allow. Expect near-zero.
        assert!(
            total_excess <= cases,
            "avg excess too high: {total_excess}/{cases}"
        );
    }

    #[test]
    fn stats_are_coherent() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 2), 3).unwrap();
        let r = solve_general(&p);
        let colored =
            r.stats.direct + r.stats.walk_flips + r.stats.shifts + r.stats.residue_colored;
        assert_eq!(colored, p.num_items());
        assert!(r.stats.final_colors >= r.stats.initial_colors);
        assert_eq!(
            r.stats.final_colors,
            r.stats.initial_colors + r.stats.escalations,
            "escalations account for all growth under the Escalate strategy"
        );
    }

    #[test]
    fn split_color_strategy_is_feasible() {
        let cfg = GeneralConfig {
            residue_strategy: ResidueStrategy::SplitColor,
            ..GeneralConfig::default()
        };
        let p = MigrationProblem::uniform(complete_multigraph(5, 3), 3).unwrap();
        let r = solve_general_with(&p, &cfg);
        r.schedule.validate(&p).unwrap();
        assert!(r.schedule.makespan() >= bounds::lower_bound(&p));
    }

    #[test]
    fn heavy_first_order_is_feasible_and_no_worse_on_tight_instances() {
        let cfg = GeneralConfig {
            edge_order: EdgeOrder::HeavyFirst,
            ..Default::default()
        };
        for p in [
            MigrationProblem::uniform(complete_multigraph(5, 2), 1).unwrap(),
            MigrationProblem::uniform(complete_multigraph(7, 1), 1).unwrap(),
            MigrationProblem::new(
                complete_multigraph(5, 2),
                crate::Capacities::from_vec(vec![1, 2, 3, 4, 5]),
            )
            .unwrap(),
        ] {
            let heavy = solve_general_with(&p, &cfg);
            heavy.schedule.validate(&p).unwrap();
            let input = solve_general(&p);
            // Both are heuristics; demand the heavy-first order stays
            // within one round of the default.
            assert!(heavy.schedule.makespan() <= input.schedule.makespan() + 1);
        }
    }

    #[test]
    fn shift_depth_zero_still_terminates() {
        let cfg = GeneralConfig {
            shift_depth: 0,
            ..GeneralConfig::default()
        };
        let p = MigrationProblem::uniform(complete_multigraph(4, 3), 3).unwrap();
        let r = solve_general_with(&p, &cfg);
        r.schedule.validate(&p).unwrap();
    }
}
