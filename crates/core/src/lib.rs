//! Heterogeneous data-migration scheduling — the core algorithms of
//! *"Data Migration in Heterogeneous Storage Systems"* (Kari, Kim,
//! Russell — ICDCS 2011).
//!
//! # The problem
//!
//! A storage cluster must move data items between disks. The *transfer
//! graph* has a node per disk and an edge per unit-size item; disk `v` can
//! take part in at most `c_v` simultaneous transfers (its *transfer
//! constraint*). A schedule partitions the edges into rounds, each round
//! loading every disk `v` with at most `c_v` of its edges; the goal is the
//! fewest rounds.
//!
//! # What is implemented
//!
//! * [`MigrationProblem`] / [`MigrationSchedule`] — instance and solution
//!   types with full validation.
//! * [`bounds`] — both lower bounds of §III: `Δ' = max ⌈d_v/c_v⌉` and
//!   `Γ' = max_S ⌈2|E(S)|/Σc_v⌉`, the latter computed exactly via maximum-
//!   density subgraph.
//! * [`even`] — the polynomial-time **optimal** algorithm for even `c_v`
//!   (§IV): degree padding, Euler orientation, and `Δ'` rounds of
//!   `c_v/2`-matchings extracted by max-flow.
//! * [`general`] — the solver for arbitrary `c_v` (§V): capacitated
//!   alternating-walk recoloring with orbit-style shift moves, escalating
//!   the color budget only in the paper's "witness" situation; optional
//!   Phase-2 residue coloring by node-splitting + Vizing (§V-C3).
//! * [`saia`] — Saia's 1.5-approximation baseline (node splitting +
//!   Shannon-bounded edge coloring).
//! * [`homogeneous`] — the `c_v = 1` baseline of Hall et al. (plain
//!   multigraph edge coloring), quantifying the cost of ignoring
//!   heterogeneity (the paper's Fig. 2 gap).
//! * [`greedy_rounds`] — first-fit maximal round packing, a natural
//!   systems baseline.
//! * [`bipartite_opt`] — exact optimum for bipartite transfer graphs
//!   (reconfiguration workloads) via node splitting + König coloring.
//! * [`exact`] — branch-and-bound exact optimum for small instances,
//!   certifying the heuristic solvers' optimality gaps.
//! * [`orbits`] — diagnostic classification of partial colorings into the
//!   paper's balancing/color/tight orbits (§V-B, Defs. 5.1–5.4).
//! * [`replan`] — online replanning: merge the unexecuted remainder of a
//!   running migration with newly arrived transfers and re-solve.
//! * [`parallel`] — component-parallel solving: connected components are
//!   independent subproblems, solved concurrently and merged round-wise
//!   with a bit-for-bit deterministic result.
//! * [`shard`] — sharded solving for instances whose components exceed a
//!   single worker: canonical graph-cut cells, per-shard solving, and a
//!   round-aligned boundary pass reconciling the cut edges within a
//!   proven additive gap.
//! * [`solver`] — a common [`solver::Solver`] trait, a registry of all of
//!   the above, and an automatic dispatcher.
//!
//! # Quickstart
//!
//! ```
//! use dmig_core::{MigrationProblem, solver::{AutoSolver, Solver}};
//! use dmig_graph::builder::complete_multigraph;
//!
//! // Fig. 2 of the paper: 3 disks, M = 4 items between each pair, and
//! // every disk able to run two transfers at once. Each disk has degree
//! // 2M, so Δ' = M rounds — optimal (a homogeneous scheduler needs 3M).
//! let problem = MigrationProblem::uniform(complete_multigraph(3, 4), 2)?;
//! let schedule = AutoSolver::default().solve(&problem)?;
//! schedule.validate(&problem)?;
//! assert_eq!(schedule.makespan(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite_opt;
pub mod bounds;
pub mod error;
pub mod even;
pub mod exact;
pub mod general;
pub mod greedy_rounds;
pub mod homogeneous;
pub mod orbits;
pub mod parallel;
pub mod problem;
pub mod replan;
pub mod saia;
pub mod schedule;
pub mod shard;
pub mod solver;
pub mod split;

pub use error::SolveError;
pub use problem::{Capacities, MigrationProblem, ProblemError};
pub use schedule::{MigrationSchedule, ScheduleError};
