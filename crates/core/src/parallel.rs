//! Component-parallel solving: split, solve concurrently, merge.
//!
//! Connected components of the transfer graph are provably independent
//! subproblems — a round never couples disks from different components, and
//! `Δ'` of the whole instance is the maximum of the per-component `Δ'`s. So
//! any solver can be run per component and the per-component rounds merged
//! **index-wise**: merged round `r` is the union of every component's round
//! `r` (disjoint disk sets keep each merged round feasible), and the merged
//! makespan is the maximum per-component makespan.
//!
//! The merge is bit-for-bit deterministic regardless of thread count or
//! scheduling: components are processed in a canonical order (ascending
//! smallest node id, as produced by
//! [`dmig_graph::components::connected_components`]), each worker writes its
//! result into the slot of its component index, and the merge walks the
//! slots in order.
//!
//! # Example
//!
//! ```
//! use dmig_core::{parallel::ParallelSolver, solver::{EvenOptimalSolver, Solver}, MigrationProblem};
//! use dmig_graph::GraphBuilder;
//!
//! // Two independent components; each is solved separately and the
//! // rounds are merged index-wise.
//! let g = GraphBuilder::new().parallel_edges(0, 1, 4).parallel_edges(2, 3, 2).build();
//! let p = MigrationProblem::uniform(g, 2)?;
//! let s = ParallelSolver::with_threads(Box::new(EvenOptimalSolver), 2).solve(&p)?;
//! s.validate(&p)?;
//! assert_eq!(s.makespan(), 2); // max(⌈8/2⌉ /2 …) = Δ' = 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dmig_flow::pool;
use dmig_graph::{components::connected_components, EdgeId, Multigraph, NodeId};

use crate::solver::Solver;
use crate::{Capacities, MigrationProblem, MigrationSchedule, SolveError};

/// One connected component of a [`MigrationProblem`], remapped to dense
/// local ids, plus the mapping back to the original instance.
#[derive(Clone, Debug)]
pub struct ComponentPart {
    /// The component as a standalone instance (local node/edge ids).
    pub problem: MigrationProblem,
    /// `edge_map[local_edge] = original EdgeId`.
    pub edge_map: Vec<EdgeId>,
}

/// Number of worker threads the host offers (`available_parallelism`,
/// falling back to 1 when unknown).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Splits a problem into its connected components with at least one edge.
///
/// Components appear in a canonical order: ascending smallest original node
/// id. Within a component, local node ids follow ascending original node id
/// and local edge ids follow ascending original edge id, so a deterministic
/// solver sees a deterministic subinstance.
#[must_use]
pub fn split_components(problem: &MigrationProblem) -> Vec<ComponentPart> {
    let g = problem.graph();
    let comps = connected_components(g);
    let groups = comps.groups();

    // Dense local node ids per component, ascending original id (groups()
    // lists members in ascending order already).
    let mut local_of = vec![0usize; g.num_nodes()];
    for group in &groups {
        for (local, v) in group.iter().enumerate() {
            local_of[v.index()] = local;
        }
    }

    // Edges per component, in original edge-id order.
    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); groups.len()];
    let mut edge_maps: Vec<Vec<EdgeId>> = vec![Vec::new(); groups.len()];
    for (e, ep) in g.edges() {
        let c = comps.component_of(ep.u);
        edges[c].push((local_of[ep.u.index()], local_of[ep.v.index()]));
        edge_maps[c].push(e);
    }

    groups
        .iter()
        .zip(edges)
        .zip(edge_maps)
        .filter(|((_, es), _)| !es.is_empty())
        .map(|((group, es), edge_map)| {
            let mut sub = Multigraph::with_capacity(group.len(), es.len());
            for (u, v) in es {
                sub.add_edge(NodeId::new(u), NodeId::new(v));
            }
            let caps: Capacities = group.iter().map(|&v| problem.capacities().get(v)).collect();
            let problem = MigrationProblem::new(sub, caps)
                .expect("a component of a valid problem is a valid problem");
            ComponentPart { problem, edge_map }
        })
        .collect()
}

/// Extracts an arbitrary node/edge subset of `problem` as a standalone
/// [`ComponentPart`], using the same canonical remapping as
/// [`split_components`]: local node ids follow ascending original node id
/// (`nodes` must be sorted ascending), local edge ids follow `edges`
/// order (callers pass ascending original edge ids). The shard layer uses
/// this for partition cells and the boundary subproblem; on the groups of
/// [`connected_components`] it reproduces `split_components` exactly.
///
/// # Panics
///
/// Panics if an edge in `edges` has an endpoint outside `nodes`, or if
/// `nodes` contains an out-of-range or duplicate id.
#[must_use]
pub fn extract_part(
    problem: &MigrationProblem,
    nodes: &[NodeId],
    edges: &[EdgeId],
) -> ComponentPart {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes ascending");
    let g = problem.graph();
    let mut local_of = vec![usize::MAX; g.num_nodes()];
    for (local, v) in nodes.iter().enumerate() {
        local_of[v.index()] = local;
    }
    let mut sub = Multigraph::with_capacity(nodes.len(), edges.len());
    for &e in edges {
        let ep = g.endpoints(e);
        let (u, v) = (local_of[ep.u.index()], local_of[ep.v.index()]);
        assert!(
            u != usize::MAX && v != usize::MAX,
            "edge endpoints must lie in the node subset"
        );
        sub.add_edge(NodeId::new(u), NodeId::new(v));
    }
    let caps: Capacities = nodes.iter().map(|&v| problem.capacities().get(v)).collect();
    let problem =
        MigrationProblem::new(sub, caps).expect("a subset of a valid problem is a valid problem");
    ComponentPart {
        problem,
        edge_map: edges.to_vec(),
    }
}

/// Solves every part with `solve`, using up to `threads` worker threads.
///
/// The calling thread always works; *extra* workers are recruited from the
/// process-wide [`dmig_flow::pool::budget`] shared with the intra-component
/// quota recursion, so component- and recursion-level parallelism together
/// never exceed the configured thread budget. When no permits are left
/// (e.g. the budget went to a sibling solve) the components are simply
/// solved on the calling thread — the schedules are identical either way.
///
/// Results come back indexed like `parts`, so the outcome is independent of
/// thread count and scheduling. If several components fail, the error of
/// the lowest component index is returned.
///
/// # Errors
///
/// Returns the first (lowest component index) error produced by `solve`.
pub fn solve_components<F>(
    parts: &[ComponentPart],
    threads: usize,
    solve: F,
) -> Result<Vec<MigrationSchedule>, SolveError>
where
    F: Fn(&MigrationProblem) -> Result<MigrationSchedule, SolveError> + Sync,
{
    let workers = threads.max(1).min(parts.len());
    let permits: Vec<pool::WorkerPermit<'_>> =
        pool::budget().try_acquire_many(workers.saturating_sub(1));
    if permits.is_empty() {
        return parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let _span = solve_component_span(None, i, p);
                solve(&p.problem)
            })
            .collect();
    }

    // Work-stealing over a shared index; each worker writes into the slot
    // of the component it claimed, so completion order is irrelevant.
    // Helper spans attach to the coordinator's span explicitly — the
    // thread-local span stack does not cross `scope.spawn`; the calling
    // thread's spans nest naturally (parent `None`).
    let parent = dmig_obs::current_span();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<MigrationSchedule, SolveError>>>> =
        parts.iter().map(|_| Mutex::new(None)).collect();
    let work = |span_parent: Option<dmig_obs::SpanId>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(part) = parts.get(i) else { break };
        let span = solve_component_span(span_parent, i, part);
        let result = solve(&part.problem);
        drop(span);
        *slots[i].lock().expect("result slot poisoned") = Some(result);
    };
    std::thread::scope(|scope| {
        for permit in permits {
            let work = &work;
            scope.spawn(move || {
                let _permit = permit;
                work(parent);
            });
        }
        work(None);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every component slot is filled before scope exit")
        })
        .collect()
}

/// Telemetry common to both solve paths: a per-component span (attributed
/// to `parent` when solving off-thread), a solve-time histogram sample,
/// and the component counter.
fn solve_component_span(
    parent: Option<dmig_obs::SpanId>,
    index: usize,
    part: &ComponentPart,
) -> (dmig_obs::SpanGuard, dmig_obs::Stopwatch) {
    dmig_obs::counter_add(dmig_obs::keys::COMPONENTS_SOLVED, 1);
    (
        dmig_obs::span_under(parent, "component", || {
            format!(
                "#{index} disks={} items={}",
                part.problem.num_disks(),
                part.problem.num_items()
            )
        }),
        dmig_obs::stopwatch(dmig_obs::keys::COMPONENT_SOLVE_NS),
    )
}

/// Merges per-component schedules index-wise back into original edge ids.
///
/// Merged round `r` concatenates every component's round `r` (components in
/// `parts` order, edges mapped through
/// [`ComponentPart::edge_map`]); the merged makespan is the maximum
/// per-component makespan.
///
/// # Panics
///
/// Panics if `schedules` is not aligned with `parts`.
#[must_use]
pub fn merge_component_schedules(
    parts: &[ComponentPart],
    schedules: &[MigrationSchedule],
) -> MigrationSchedule {
    assert_eq!(parts.len(), schedules.len(), "one schedule per component");
    let makespan = schedules
        .iter()
        .map(MigrationSchedule::makespan)
        .max()
        .unwrap_or(0);
    let mut rounds: Vec<Vec<EdgeId>> = vec![Vec::new(); makespan];
    for (part, schedule) in parts.iter().zip(schedules) {
        for (r, round) in schedule.rounds().iter().enumerate() {
            rounds[r].extend(round.iter().map(|&e| part.edge_map[e.index()]));
        }
    }
    let mut merged = MigrationSchedule::from_rounds(rounds);
    merged.trim_empty_rounds();
    merged
}

/// Full split → solve-concurrently → merge pipeline.
///
/// # Errors
///
/// Returns the first (lowest component index) error produced by `solve`.
pub fn solve_split<F>(
    problem: &MigrationProblem,
    threads: usize,
    solve: F,
) -> Result<MigrationSchedule, SolveError>
where
    F: Fn(&MigrationProblem) -> Result<MigrationSchedule, SolveError> + Sync,
{
    let _span = dmig_obs::span_labeled("solve_split", || format!("threads={threads}"));
    // One budget for the whole solve: `threads - 1` extra workers beyond
    // this thread, shared between the component fan-out below and the
    // intra-component quota recursion (dmig-flow). Whichever layer asks
    // first gets the spare threads; a single giant component hands them
    // all to the recursion.
    pool::budget().set_parallelism(threads);
    let parts = split_components(problem);
    let schedules = solve_components(&parts, threads, solve)?;
    Ok(merge_component_schedules(&parts, &schedules))
}

/// A [`Solver`] adapter that runs any inner solver per connected component,
/// concurrently, and merges the rounds (see the module docs).
///
/// The schedule is identical for every thread count; `threads` only
/// controls how many components are solved at once.
pub struct ParallelSolver {
    inner: Box<dyn Solver>,
    threads: usize,
}

impl std::fmt::Debug for ParallelSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSolver")
            .field("inner", &self.inner.name())
            .field("threads", &self.threads)
            .finish()
    }
}

impl ParallelSolver {
    /// Wraps `inner`, using all available hardware threads.
    #[must_use]
    pub fn new(inner: Box<dyn Solver>) -> Self {
        let threads = default_threads();
        ParallelSolver { inner, threads }
    }

    /// Wraps `inner` with an explicit worker-thread budget (min 1).
    #[must_use]
    pub fn with_threads(inner: Box<dyn Solver>, threads: usize) -> Self {
        ParallelSolver {
            inner,
            threads: threads.max(1),
        }
    }

    /// The wrapped solver.
    #[must_use]
    pub fn inner(&self) -> &dyn Solver {
        self.inner.as_ref()
    }

    /// The worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Solver for ParallelSolver {
    fn name(&self) -> &'static str {
        "parallel"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        solve_split(problem, self.threads, |sub| self.inner.solve(sub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{AutoSolver, EvenOptimalSolver, GreedySolver};
    use dmig_graph::builder::{complete_multigraph, GraphBuilder};

    /// 3 components: K3×2 (Δ'=2), a 4-parallel pair (Δ'=2), a 6-parallel
    /// pair (Δ'=3), plus an isolated node.
    fn multi_component() -> MigrationProblem {
        let g = GraphBuilder::new()
            .nodes(9)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .parallel_edges(3, 4, 4)
            .parallel_edges(6, 7, 6)
            .build();
        MigrationProblem::uniform(g, 2).unwrap()
    }

    #[test]
    fn split_is_canonical_and_covers_all_edges() {
        let p = multi_component();
        let parts = split_components(&p);
        assert_eq!(parts.len(), 3, "isolated node 5/8 contribute no parts");
        // Canonical order: ascending smallest original node id.
        assert_eq!(parts[0].problem.num_disks(), 3);
        assert_eq!(parts[1].edge_map[0].index(), 6);
        let total: usize = parts.iter().map(|p| p.edge_map.len()).sum();
        assert_eq!(total, p.num_items());
        // Edge maps are ascending (original edge-id order).
        for part in &parts {
            assert!(part.edge_map.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn merged_schedule_is_valid_and_optimal() {
        let p = multi_component();
        let s = solve_split(&p, 4, crate::even::solve_even).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
        assert_eq!(s.makespan(), 3);
    }

    #[test]
    fn merged_makespan_is_max_of_parts() {
        let p = multi_component();
        let parts = split_components(&p);
        let schedules = solve_components(&parts, 2, crate::even::solve_even).unwrap();
        let merged = merge_component_schedules(&parts, &schedules);
        assert_eq!(
            merged.makespan(),
            schedules
                .iter()
                .map(MigrationSchedule::makespan)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn thread_count_does_not_change_the_schedule() {
        let p = multi_component();
        let s1 = solve_split(&p, 1, crate::even::solve_even).unwrap();
        for threads in [2, 3, 8] {
            let st = solve_split(&p, threads, crate::even::solve_even).unwrap();
            assert_eq!(s1, st, "schedule differs at {threads} threads");
        }
    }

    #[test]
    fn error_of_lowest_component_wins() {
        // Components in canonical order: {0,1} (even caps), {2,3} (odd cap
        // on a used disk → OddCapacity from solve_even).
        let g = GraphBuilder::new().edge(0, 1).edge(2, 3).build();
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![2, 2, 1, 1])).unwrap();
        let err = solve_split(&p, 4, crate::even::solve_even).unwrap_err();
        match err {
            SolveError::OddCapacity { node, .. } => assert_eq!(node.index(), 0, "local id"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn single_component_round_trips() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 2), 2).unwrap();
        let s = solve_split(&p, 4, crate::even::solve_even).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
    }

    #[test]
    fn empty_problem_yields_empty_schedule() {
        let p = MigrationProblem::uniform(dmig_graph::Multigraph::with_nodes(3), 2).unwrap();
        let s = solve_split(&p, 4, crate::even::solve_even).unwrap();
        assert_eq!(s.makespan(), 0);
    }

    #[test]
    fn parallel_solver_wraps_any_inner() {
        let p = multi_component();
        for inner in [
            Box::new(EvenOptimalSolver) as Box<dyn Solver>,
            Box::new(AutoSolver),
            Box::new(GreedySolver),
        ] {
            let solver = ParallelSolver::with_threads(inner, 3);
            let s = solver.solve(&p).unwrap();
            s.validate(&p).unwrap();
        }
        let default = ParallelSolver::new(Box::new(EvenOptimalSolver));
        assert!(default.threads() >= 1);
        assert_eq!(default.name(), "parallel");
        assert_eq!(default.inner().name(), "even-optimal");
    }
}
