//! Problem instances: transfer graph + per-disk transfer constraints.

use core::fmt;

use dmig_graph::{Multigraph, NodeId};

/// Errors detected when constructing a [`MigrationProblem`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProblemError {
    /// The capacity vector length does not match the node count.
    CapacityLengthMismatch {
        /// Provided capacities.
        capacities: usize,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// A disk was given transfer constraint 0 but has items to move.
    ZeroCapacity {
        /// The offending disk.
        node: NodeId,
    },
    /// The transfer graph contains a self-loop (an item "moving" to its own
    /// disk), which is not a migration.
    SelfLoop {
        /// The disk carrying the loop.
        node: NodeId,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::CapacityLengthMismatch { capacities, nodes } => {
                write!(f, "{capacities} capacities given for {nodes} disks")
            }
            ProblemError::ZeroCapacity { node } => {
                write!(
                    f,
                    "disk {node} has transfer constraint 0 but incident transfers"
                )
            }
            ProblemError::SelfLoop { node } => {
                write!(f, "transfer graph has a self-loop at disk {node}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// Per-disk transfer constraints `c_v`: how many simultaneous transfers
/// each disk can take part in.
///
/// # Example
///
/// ```
/// use dmig_core::Capacities;
///
/// let caps = Capacities::from_vec(vec![2, 4, 3]);
/// assert_eq!(caps.get(1.into()), 4);
/// assert!(!caps.all_even());
/// assert_eq!(caps.min(), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Capacities {
    values: Vec<u32>,
}

impl Capacities {
    /// Wraps a capacity vector (index `v` holds `c_v`).
    #[must_use]
    pub fn from_vec(values: Vec<u32>) -> Self {
        Capacities { values }
    }

    /// All disks share the same constraint `c`.
    #[must_use]
    pub fn uniform(n: usize, c: u32) -> Self {
        Capacities { values: vec![c; n] }
    }

    /// Number of disks covered.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no disks are covered.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The constraint of disk `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, v: NodeId) -> u32 {
        self.values[v.index()]
    }

    /// The raw capacity slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }

    /// Capacities as `usize`s (handy for validators).
    #[must_use]
    pub fn to_usize_vec(&self) -> Vec<usize> {
        self.values.iter().map(|&c| c as usize).collect()
    }

    /// Returns `true` if every constraint is even — the case with a
    /// polynomial-time optimal schedule (paper §IV).
    #[must_use]
    pub fn all_even(&self) -> bool {
        self.values.iter().all(|c| c % 2 == 0)
    }

    /// Minimum constraint, if any disks exist (`c⁻` in the paper).
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        self.values.iter().copied().min()
    }

    /// Maximum constraint, if any disks exist (`c⁺` in the paper).
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        self.values.iter().copied().max()
    }
}

impl FromIterator<u32> for Capacities {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Capacities {
            values: iter.into_iter().collect(),
        }
    }
}

/// A heterogeneous data-migration instance: the transfer multigraph plus
/// the transfer constraints (§III of the paper).
///
/// Construction validates the instance: capacities must cover every disk,
/// disks with incident transfers need `c_v ≥ 1`, and self-loops are
/// rejected.
///
/// # Example
///
/// ```
/// use dmig_core::{Capacities, MigrationProblem};
/// use dmig_graph::GraphBuilder;
///
/// let g = GraphBuilder::new().parallel_edges(0, 1, 3).edge(1, 2).build();
/// let p = MigrationProblem::new(g, Capacities::from_vec(vec![1, 2, 1]))?;
/// assert_eq!(p.num_disks(), 3);
/// assert_eq!(p.num_items(), 4);
/// assert_eq!(p.delta_prime(), 3); // disk 0: ⌈3/1⌉
/// # Ok::<(), dmig_core::ProblemError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationProblem {
    graph: Multigraph,
    capacities: Capacities,
}

impl MigrationProblem {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// * [`ProblemError::CapacityLengthMismatch`] if `capacities` does not
    ///   cover every node;
    /// * [`ProblemError::SelfLoop`] if the graph has a self-loop;
    /// * [`ProblemError::ZeroCapacity`] if a disk with incident transfers
    ///   has constraint 0.
    pub fn new(graph: Multigraph, capacities: Capacities) -> Result<Self, ProblemError> {
        if capacities.len() != graph.num_nodes() {
            return Err(ProblemError::CapacityLengthMismatch {
                capacities: capacities.len(),
                nodes: graph.num_nodes(),
            });
        }
        for (_, ep) in graph.edges() {
            if ep.is_loop() {
                return Err(ProblemError::SelfLoop { node: ep.u });
            }
        }
        for v in graph.nodes() {
            if graph.degree(v) > 0 && capacities.get(v) == 0 {
                return Err(ProblemError::ZeroCapacity { node: v });
            }
        }
        Ok(MigrationProblem { graph, capacities })
    }

    /// Builds an instance where every disk has the same constraint `c`.
    ///
    /// # Errors
    ///
    /// Same as [`MigrationProblem::new`].
    pub fn uniform(graph: Multigraph, c: u32) -> Result<Self, ProblemError> {
        let caps = Capacities::uniform(graph.num_nodes(), c);
        MigrationProblem::new(graph, caps)
    }

    /// The transfer multigraph.
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &Multigraph {
        &self.graph
    }

    /// The transfer constraints.
    #[inline]
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        &self.capacities
    }

    /// Number of disks.
    #[inline]
    #[must_use]
    pub fn num_disks(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of data items to migrate.
    #[inline]
    #[must_use]
    pub fn num_items(&self) -> usize {
        self.graph.num_edges()
    }

    /// The first lower bound `Δ' = max_v ⌈d_v / c_v⌉` (paper §III, LB1).
    ///
    /// Returns 0 for an instance with no items.
    #[must_use]
    pub fn delta_prime(&self) -> usize {
        self.graph
            .nodes()
            .map(|v| {
                let d = self.graph.degree(v);
                let c = self.capacities.get(v) as usize;
                if d == 0 {
                    0
                } else {
                    d.div_ceil(c)
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Splits the instance into `(graph, capacities)`.
    #[must_use]
    pub fn into_parts(self) -> (Multigraph, Capacities) {
        (self.graph, self.capacities)
    }
}

impl fmt::Display for MigrationProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migration problem(disks={}, items={}, Δ'={})",
            self.num_disks(),
            self.num_items(),
            self.delta_prime()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{complete_multigraph, GraphBuilder};

    #[test]
    fn uniform_construction() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 2).unwrap();
        assert_eq!(p.num_disks(), 3);
        assert_eq!(p.num_items(), 6);
        assert!(p.capacities().all_even());
    }

    #[test]
    fn capacity_length_checked() {
        let g = complete_multigraph(3, 1);
        let err = MigrationProblem::new(g, Capacities::from_vec(vec![1, 1])).unwrap_err();
        assert_eq!(
            err,
            ProblemError::CapacityLengthMismatch {
                capacities: 2,
                nodes: 3
            }
        );
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Multigraph::with_nodes(2);
        g.add_edge(1.into(), 1.into());
        let err = MigrationProblem::uniform(g, 1).unwrap_err();
        assert_eq!(
            err,
            ProblemError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn zero_capacity_rejected_only_when_used() {
        let g = GraphBuilder::new().nodes(3).edge(0, 1).build();
        // Disk 2 is idle; its capacity may be 0.
        assert!(MigrationProblem::new(g.clone(), Capacities::from_vec(vec![1, 1, 0])).is_ok());
        let err = MigrationProblem::new(g, Capacities::from_vec(vec![0, 1, 0])).unwrap_err();
        assert_eq!(
            err,
            ProblemError::ZeroCapacity {
                node: NodeId::new(0)
            }
        );
    }

    #[test]
    fn delta_prime_examples() {
        // Fig. 2 family: K3 with M=4 parallel, c=2 → Δ' = ⌈2M/2⌉ = M = 4.
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
        assert_eq!(p.delta_prime(), 4);
        // Heterogeneous: degrees 4 with c=3 → ⌈4/3⌉ = 2.
        let p2 = MigrationProblem::uniform(complete_multigraph(3, 2), 3).unwrap();
        assert_eq!(p2.delta_prime(), 2);
        // No items.
        let p3 = MigrationProblem::uniform(Multigraph::with_nodes(4), 1).unwrap();
        assert_eq!(p3.delta_prime(), 0);
    }

    #[test]
    fn capacities_helpers() {
        let caps = Capacities::from_vec(vec![2, 4, 6]);
        assert!(caps.all_even());
        assert_eq!(caps.min(), Some(2));
        assert_eq!(caps.max(), Some(6));
        assert_eq!(caps.to_usize_vec(), vec![2, 4, 6]);
        let odd: Capacities = [1u32, 2].into_iter().collect();
        assert!(!odd.all_even());
        assert!(Capacities::from_vec(vec![]).is_empty());
        assert_eq!(Capacities::from_vec(vec![]).min(), None);
    }

    #[test]
    fn display_mentions_sizes() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap();
        let s = p.to_string();
        assert!(s.contains("disks=3"));
        assert!(s.contains("items=3"));
    }

    #[test]
    fn into_parts_roundtrip() {
        let g = complete_multigraph(3, 1);
        let p = MigrationProblem::uniform(g.clone(), 2).unwrap();
        let (g2, caps) = p.into_parts();
        assert_eq!(g, g2);
        assert_eq!(caps, Capacities::uniform(3, 2));
    }

    use dmig_graph::Multigraph;
    use dmig_graph::NodeId;
}
