//! Solver-level errors.

use core::fmt;

use dmig_graph::NodeId;

/// Errors a [`crate::solver::Solver`] may report.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The even-capacity solver was given an odd transfer constraint.
    OddCapacity {
        /// The first disk with odd `c_v`.
        node: NodeId,
        /// Its constraint.
        capacity: u32,
    },
    /// The bipartite-optimal solver was given a non-bipartite transfer
    /// graph.
    NotBipartite,
    /// The exact solver was given an instance beyond its size limit.
    InstanceTooLarge {
        /// Items in the instance.
        items: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The exact solver's search-node budget ran out before the result
    /// could be certified.
    SearchBudgetExceeded {
        /// The round count being probed when the budget ran out.
        at_rounds: usize,
    },
    /// An internal invariant failed (indicates a bug; carries context).
    Internal(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::OddCapacity { node, capacity } => write!(
                f,
                "even-capacity solver requires even constraints, disk {node} has c = {capacity}"
            ),
            SolveError::NotBipartite => {
                write!(
                    f,
                    "bipartite-optimal solver requires a bipartite transfer graph"
                )
            }
            SolveError::InstanceTooLarge { items, limit } => {
                write!(
                    f,
                    "exact solver limited to {limit} items, instance has {items}"
                )
            }
            SolveError::SearchBudgetExceeded { at_rounds } => {
                write!(
                    f,
                    "exact search budget exhausted while probing {at_rounds} rounds"
                )
            }
            SolveError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SolveError::OddCapacity {
            node: NodeId::new(3),
            capacity: 5,
        };
        assert!(e.to_string().contains("v3"));
        assert!(SolveError::NotBipartite.to_string().contains("bipartite"));
        assert!(SolveError::Internal("x".into()).to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
