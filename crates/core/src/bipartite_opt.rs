//! Exact optimum for bipartite transfer graphs.
//!
//! Reconfiguration workloads — moving items from an old layout to a new
//! one, rebuilding onto freshly added disks, draining disks before removal
//! — produce bipartite transfer graphs. There the problem is solvable
//! exactly for *any* capacities: split each disk into `c_v` copies with a
//! balanced distribution (max split degree `Δ' = max ⌈d_v/c_v⌉`) and apply
//! König's theorem (`χ' = Δ` for bipartite multigraphs). The result is
//! exactly `Δ' = LB1` rounds — no 1.5 loss, no parity condition. Coffman
//! et al. \[8\] singled out the bipartite case as optimally solvable; this
//! is the capacitated version.

use dmig_color::bipartite::bipartite_coloring;

use crate::split::split_round_robin;
use crate::{MigrationProblem, MigrationSchedule, SolveError};

/// Computes an optimal schedule (exactly `Δ'` rounds) for a bipartite
/// transfer graph with arbitrary capacities.
///
/// # Errors
///
/// Returns [`SolveError::NotBipartite`] when the transfer graph is not
/// bipartite.
///
/// # Example
///
/// ```
/// use dmig_core::{bipartite_opt::solve_bipartite, MigrationProblem};
/// use dmig_graph::GraphBuilder;
///
/// // Drain disks {0,1} onto disks {2,3}.
/// let g = GraphBuilder::new()
///     .parallel_edges(0, 2, 3)
///     .parallel_edges(0, 3, 2)
///     .parallel_edges(1, 3, 3)
///     .build();
/// let p = MigrationProblem::uniform(g, 3)?;
/// let s = solve_bipartite(&p)?;
/// s.validate(&p)?;
/// assert_eq!(s.makespan(), p.delta_prime());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_bipartite(problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
    let split = split_round_robin(problem);
    // The split of a bipartite graph is bipartite (copies inherit sides).
    let coloring = bipartite_coloring(&split.graph).map_err(|_| SolveError::NotBipartite)?;
    Ok(MigrationSchedule::from_coloring(&coloring))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capacities;
    use dmig_graph::builder::cycle_multigraph;
    use dmig_graph::{GraphBuilder, Multigraph};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_optimal(p: &MigrationProblem) {
        let s = solve_bipartite(p).unwrap();
        s.validate(p).unwrap();
        assert_eq!(
            s.makespan(),
            p.delta_prime(),
            "König split must hit Δ' on {p}"
        );
    }

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(3), 1).unwrap();
        assert_eq!(solve_bipartite(&p).unwrap().makespan(), 0);
    }

    #[test]
    fn non_bipartite_rejected() {
        let p =
            MigrationProblem::uniform(dmig_graph::builder::complete_multigraph(3, 1), 1).unwrap();
        assert_eq!(solve_bipartite(&p).unwrap_err(), SolveError::NotBipartite);
    }

    #[test]
    fn odd_capacities_still_optimal() {
        let g = GraphBuilder::new()
            .parallel_edges(0, 2, 5)
            .parallel_edges(1, 2, 3)
            .parallel_edges(0, 3, 2)
            .build();
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![3, 1, 5, 2])).unwrap();
        check_optimal(&p);
    }

    #[test]
    fn even_cycles() {
        for n in [4usize, 6, 10] {
            let p = MigrationProblem::uniform(cycle_multigraph(n, 3), 2).unwrap();
            check_optimal(&p);
        }
    }

    #[test]
    fn randomized_bipartite_instances() {
        let mut rng = StdRng::seed_from_u64(0xB1);
        for _ in 0..30 {
            let nl = rng.gen_range(1..7);
            let nr = rng.gen_range(1..7);
            let mut g = Multigraph::with_nodes(nl + nr);
            for _ in 0..rng.gen_range(1..40) {
                let l = rng.gen_range(0..nl);
                let r = nl + rng.gen_range(0..nr);
                g.add_edge(l.into(), r.into());
            }
            if g.num_edges() == 0 {
                continue;
            }
            let caps: Capacities = (0..nl + nr).map(|_| rng.gen_range(1..6u32)).collect();
            let p = MigrationProblem::new(g, caps).unwrap();
            check_optimal(&p);
        }
    }
}
