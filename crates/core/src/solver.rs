//! A common interface over all schedulers, plus automatic dispatch.

use crate::exact::{solve_exact_with, ExactConfig};
use crate::general::{solve_general, solve_general_with, GeneralConfig};
use crate::{
    bipartite_opt::solve_bipartite, even::solve_even, greedy_rounds::solve_greedy,
    homogeneous::solve_homogeneous, saia::solve_saia, MigrationProblem, MigrationSchedule,
    SolveError,
};

/// A migration scheduler.
///
/// Implementations must return a schedule that passes
/// [`MigrationSchedule::validate`] for the given problem, or an error
/// explaining why the instance is outside their domain.
///
/// `Send + Sync` is required so solvers can be shared with the worker
/// threads of [`crate::parallel::ParallelSolver`]; solvers are plain
/// configuration structs, so this costs implementations nothing.
pub trait Solver: Send + Sync {
    /// Short stable identifier (used in experiment tables and the CLI).
    fn name(&self) -> &'static str;

    /// Produces a feasible schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] when the instance is outside the solver's
    /// domain (odd capacities for [`EvenOptimalSolver`], non-bipartite
    /// graphs for [`BipartiteOptimalSolver`]).
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError>;
}

/// The optimal even-capacity algorithm (§IV, Theorem 4.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvenOptimalSolver;

impl Solver for EvenOptimalSolver {
    fn name(&self) -> &'static str {
        "even-optimal"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        solve_even(problem)
    }
}

/// The general `(1 + o(1))`-style solver (§V).
#[derive(Clone, Copy, Debug, Default)]
pub struct GeneralSolver {
    /// Configuration forwarded to [`solve_general_with`].
    pub config: GeneralConfig,
}

impl Solver for GeneralSolver {
    fn name(&self) -> &'static str {
        "general"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        Ok(solve_general_with(problem, &self.config).schedule)
    }
}

/// Saia's 1.5-approximation baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaiaSolver;

impl Solver for SaiaSolver {
    fn name(&self) -> &'static str {
        "saia-1.5"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        Ok(solve_saia(problem).schedule)
    }
}

/// The homogeneous (`c_v = 1`) baseline of Hall et al.
#[derive(Clone, Copy, Debug, Default)]
pub struct HomogeneousSolver;

impl Solver for HomogeneousSolver {
    fn name(&self) -> &'static str {
        "homogeneous"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        Ok(solve_homogeneous(problem))
    }
}

/// First-fit greedy round packing.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        Ok(solve_greedy(problem))
    }
}

/// Exact optimum for bipartite transfer graphs.
#[derive(Clone, Copy, Debug, Default)]
pub struct BipartiteOptimalSolver;

impl Solver for BipartiteOptimalSolver {
    fn name(&self) -> &'static str {
        "bipartite-optimal"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        solve_bipartite(problem)
    }
}

/// Branch-and-bound exact optimum, for small instances only.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactSolver {
    /// Search limits forwarded to [`solve_exact_with`].
    pub config: ExactConfig,
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        Ok(solve_exact_with(problem, &self.config)?.schedule)
    }
}

/// Dispatches to the strongest applicable algorithm:
///
/// 1. all capacities even → [`EvenOptimalSolver`] (provably optimal);
/// 2. bipartite transfer graph → [`BipartiteOptimalSolver`] (optimal);
/// 3. otherwise → [`GeneralSolver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoSolver;

impl Solver for AutoSolver {
    fn name(&self) -> &'static str {
        "auto"
    }
    fn solve(&self, problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        if problem.capacities().all_even() {
            return solve_even(problem);
        }
        if dmig_graph::bipartite::is_bipartite(problem.graph()) {
            return solve_bipartite(problem);
        }
        Ok(solve_general(problem).schedule)
    }
}

/// All solvers, for head-to-head experiments (E5).
#[must_use]
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(AutoSolver),
        Box::new(EvenOptimalSolver),
        Box::new(GeneralSolver::default()),
        Box::new(SaiaSolver),
        Box::new(HomogeneousSolver),
        Box::new(GreedySolver),
        Box::new(BipartiteOptimalSolver),
        // The registry's exact solver gets a tight search budget so
        // head-to-head sweeps over arbitrary instances stay bounded; for
        // certified runs construct ExactSolver with a custom config.
        Box::new(ExactSolver {
            config: ExactConfig {
                max_items: 20,
                node_budget: Some(200_000),
            },
        }),
        Box::new(crate::parallel::ParallelSolver::new(Box::new(AutoSolver))),
    ]
}

/// Looks a solver up by its [`Solver::name`].
#[must_use]
pub fn solver_by_name(name: &str) -> Option<Box<dyn Solver>> {
    all_solvers().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph};

    #[test]
    fn auto_picks_even_optimal() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 3), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
    }

    #[test]
    fn auto_picks_bipartite_optimal() {
        let p = MigrationProblem::uniform(cycle_multigraph(6, 3), 3).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
    }

    #[test]
    fn auto_falls_back_to_general() {
        let p = MigrationProblem::uniform(complete_multigraph(5, 2), 3).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert!(s.makespan() >= bounds::lower_bound(&p));
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<_> = all_solvers().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(solver_by_name(n).is_some());
        }
        assert!(solver_by_name("no-such-solver").is_none());
    }

    #[test]
    fn every_applicable_solver_validates() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 2), 2).unwrap();
        for solver in all_solvers() {
            match solver.solve(&p) {
                Ok(s) => s.validate(&p).unwrap(),
                Err(e) => assert!(
                    matches!(
                        e,
                        SolveError::NotBipartite
                            | SolveError::InstanceTooLarge { .. }
                            | SolveError::SearchBudgetExceeded { .. }
                    ),
                    "{} failed unexpectedly: {e}",
                    solver.name()
                ),
            }
        }
    }
}
