//! Orbit analysis of partial capacitated colorings (paper §V-B).
//!
//! The paper's general algorithm reasons about the *structure* of a stuck
//! partial coloring through three subgraphs:
//!
//! * a **balancing orbit** (Def. 5.3) — a component of the uncolored
//!   subgraph containing a vertex *strongly missing* a color
//!   (`E_c(v) < c_v − 1`, Def. 5.1); Lemma 5.1 shows an uncolored edge
//!   can then always be colored;
//! * a **color orbit** (Def. 5.4) — a component with two vertices
//!   *lightly missing* (`E_c(v) = c_v − 1`) the **same** color; Lemma 5.2
//!   again yields progress;
//! * a **tight orbit** — neither, the only shape that can survive Phase 1
//!   and whose size Lemma 5.7 bounds by `(q + √(q² + 8)) / 2`-ish terms,
//!   driving the `OPT + O(√OPT)` analysis.
//!
//! This module provides the classification as a standalone diagnostic over
//! any partial coloring, used by tests to check the Lemma-level facts and
//! by experiments to inspect what the solver's escalation events look
//! like. (The executable *moves* of Lemmas 5.1/5.2 live inside
//! [`crate::general`] as the direct/walk/shift steps.)

use dmig_color::EdgeColoring;
use dmig_graph::{EdgeId, NodeId};

use crate::MigrationProblem;

/// How a color is missing at a vertex (Def. 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissingKind {
    /// `E_c(v) < c_v − 1`: more than one free slot.
    Strongly,
    /// `E_c(v) = c_v − 1`: exactly one free slot.
    Lightly,
}

/// Classification of one component of the uncolored subgraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrbitKind {
    /// Contains a vertex strongly missing a color (witness attached).
    Balancing {
        /// The vertex.
        vertex: NodeId,
        /// The strongly missing color.
        color: u32,
    },
    /// Contains two vertices lightly missing the same color.
    Color {
        /// The two vertices.
        vertices: (NodeId, NodeId),
        /// The shared lightly missing color.
        color: u32,
    },
    /// Neither: a tight (hard) orbit.
    Tight,
}

/// One component of the uncolored subgraph plus its classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orbit {
    /// Nodes of the component (ascending).
    pub nodes: Vec<NodeId>,
    /// Uncolored edges inside the component.
    pub uncolored_edges: Vec<EdgeId>,
    /// Structural classification.
    pub kind: OrbitKind,
}

/// Classifies how color `c` is missing at `v` under `coloring`, if at all.
///
/// # Panics
///
/// Panics if `v` or `c` is out of range for the problem/coloring.
#[must_use]
pub fn classify_missing(
    problem: &MigrationProblem,
    coloring: &EdgeColoring,
    v: NodeId,
    c: u32,
) -> Option<MissingKind> {
    let cap = problem.capacities().get(v);
    let used = color_count(problem, coloring, v, c);
    if used + 1 < cap {
        Some(MissingKind::Strongly)
    } else if used + 1 == cap {
        Some(MissingKind::Lightly)
    } else {
        None
    }
}

/// Number of edges of color `c` at `v` (self-loops impossible in validated
/// problems).
fn color_count(problem: &MigrationProblem, coloring: &EdgeColoring, v: NodeId, c: u32) -> u32 {
    problem
        .graph()
        .incident_edges(v)
        .iter()
        .filter(|&&e| coloring.color(e) == Some(c))
        .count() as u32
}

/// Decomposes the uncolored subgraph into components and classifies each
/// one per Definitions 5.3/5.4. Returns an empty vector for a complete
/// coloring.
///
/// # Panics
///
/// Panics if the coloring does not cover the problem's edges.
#[must_use]
pub fn analyze_orbits(problem: &MigrationProblem, coloring: &EdgeColoring) -> Vec<Orbit> {
    let g = problem.graph();
    assert_eq!(
        coloring.num_edges(),
        g.num_edges(),
        "coloring does not match the instance"
    );
    let uncolored: Vec<EdgeId> = coloring.uncolored_edges();
    if uncolored.is_empty() {
        return Vec::new();
    }
    // Union-find over nodes touched by uncolored edges.
    let n = g.num_nodes();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &e in &uncolored {
        let ep = g.endpoints(e);
        let a = find(&mut parent, ep.u.index());
        let b = find(&mut parent, ep.v.index());
        parent[a] = b;
    }

    // Group nodes and edges by component root.
    use std::collections::BTreeMap;
    let mut node_groups: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    let mut touched = vec![false; n];
    for &e in &uncolored {
        let ep = g.endpoints(e);
        for v in [ep.u, ep.v] {
            if !touched[v.index()] {
                touched[v.index()] = true;
                let root = find(&mut parent, v.index());
                node_groups.entry(root).or_default().push(v);
            }
        }
    }
    let mut edge_groups: BTreeMap<usize, Vec<EdgeId>> = BTreeMap::new();
    for &e in &uncolored {
        let root = find(&mut parent, g.endpoints(e).u.index());
        edge_groups.entry(root).or_default().push(e);
    }

    let q = coloring.num_colors();
    node_groups
        .into_iter()
        .map(|(root, mut nodes)| {
            nodes.sort_unstable();
            let kind = classify_component(problem, coloring, &nodes, q);
            Orbit {
                uncolored_edges: edge_groups.remove(&root).unwrap_or_default(),
                nodes,
                kind,
            }
        })
        .collect()
}

fn classify_component(
    problem: &MigrationProblem,
    coloring: &EdgeColoring,
    nodes: &[NodeId],
    q: u32,
) -> OrbitKind {
    // Balancing: any vertex strongly missing any color.
    for &v in nodes {
        for c in 0..q {
            if classify_missing(problem, coloring, v, c) == Some(MissingKind::Strongly) {
                return OrbitKind::Balancing {
                    vertex: v,
                    color: c,
                };
            }
        }
    }
    // Color orbit: two vertices lightly missing the same color.
    for c in 0..q {
        let mut first: Option<NodeId> = None;
        for &v in nodes {
            if classify_missing(problem, coloring, v, c) == Some(MissingKind::Lightly) {
                match first {
                    None => first = Some(v),
                    Some(u) => {
                        return OrbitKind::Color {
                            vertices: (u, v),
                            color: c,
                        }
                    }
                }
            }
        }
    }
    OrbitKind::Tight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capacities;
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::GraphBuilder;

    fn partial(problem: &MigrationProblem, assignments: &[(usize, u32)]) -> EdgeColoring {
        let mut c = EdgeColoring::uncolored(problem.num_items());
        for &(e, color) in assignments {
            c.set(EdgeId::new(e), color);
        }
        c
    }

    #[test]
    fn complete_coloring_has_no_orbits() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let c = partial(&p, &[(0, 0), (1, 0), (2, 0)]);
        assert!(analyze_orbits(&p, &c).is_empty());
    }

    #[test]
    fn strongly_missing_detected() {
        // Path 0-1-2, capacity 3 at node 1, one color in play, nothing
        // colored: node 1 misses color 0 with 3 free slots → strongly.
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![1, 3, 1])).unwrap();
        let mut c = EdgeColoring::uncolored(2);
        c.set(EdgeId::new(0), 0); // color edge (0,1): node 1 now has one 0-edge
        c.clear(EdgeId::new(0));
        c.set(EdgeId::new(0), 0);
        assert_eq!(
            classify_missing(&p, &c, NodeId::new(1), 0),
            Some(MissingKind::Strongly) // 1 used of 3 → 2 free
        );
        assert_eq!(classify_missing(&p, &c, NodeId::new(0), 0), None); // saturated
        assert_eq!(
            classify_missing(&p, &c, NodeId::new(2), 0),
            Some(MissingKind::Lightly)
        );
    }

    #[test]
    fn balancing_orbit_found() {
        // Triangle at c=2, one color, nothing colored: every vertex
        // strongly misses color 0 (0 used of 2... 0+1 < 2 → strongly).
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 2).unwrap();
        let mut c = EdgeColoring::uncolored(3);
        c.set(EdgeId::new(0), 0);
        c.clear(EdgeId::new(0)); // keep q = 1 with all edges uncolored
        let orbits = analyze_orbits(&p, &c);
        assert_eq!(orbits.len(), 1);
        assert_eq!(orbits[0].nodes.len(), 3);
        assert_eq!(orbits[0].uncolored_edges.len(), 3);
        assert!(matches!(orbits[0].kind, OrbitKind::Balancing { .. }));
    }

    #[test]
    fn color_orbit_found() {
        // Path 0-1, 1-2 at c=1 with q=2: color edge (0,1) with 0.
        // Remaining uncolored edge (1,2): node 1 lightly misses 1, node 2
        // lightly misses 0 and 1 → both lightly missing color 1 → color
        // orbit on color 1.
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let mut c = EdgeColoring::uncolored(2);
        c.set(EdgeId::new(0), 0);
        c.set(EdgeId::new(1), 1);
        c.clear(EdgeId::new(1)); // q = 2, edge 1 uncolored
        let orbits = analyze_orbits(&p, &c);
        assert_eq!(orbits.len(), 1);
        match &orbits[0].kind {
            OrbitKind::Color { color, .. } => assert_eq!(*color, 1),
            other => panic!("expected color orbit, got {other:?}"),
        }
    }

    #[test]
    fn tight_orbit_on_saturated_triangle() {
        // K3 at c=1 with q=2: color (0,1)=0 and (0,2)=1. Edge (1,2)
        // uncolored; node 1 lightly misses 1, node 2 lightly misses 0 —
        // no shared missing color, nothing strongly missing → tight.
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap();
        let mut c = EdgeColoring::uncolored(3);
        // Edge order in complete_multigraph(3,1): (0,1), (0,2), (1,2).
        c.set(EdgeId::new(0), 0);
        c.set(EdgeId::new(1), 1);
        let orbits = analyze_orbits(&p, &c);
        assert_eq!(orbits.len(), 1);
        assert_eq!(orbits[0].kind, OrbitKind::Tight);
        assert_eq!(orbits[0].nodes, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn separate_components_analyzed_independently() {
        let g = GraphBuilder::new().edge(0, 1).edge(2, 3).build();
        let p = MigrationProblem::uniform(g, 2).unwrap();
        let mut c = EdgeColoring::uncolored(2);
        c.set(EdgeId::new(0), 0);
        c.clear(EdgeId::new(0));
        let orbits = analyze_orbits(&p, &c);
        assert_eq!(orbits.len(), 2);
        for o in &orbits {
            assert_eq!(o.nodes.len(), 2);
            assert_eq!(o.uncolored_edges.len(), 1);
            assert!(matches!(o.kind, OrbitKind::Balancing { .. }));
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn size_mismatch_panics() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 1), 1).unwrap();
        let c = EdgeColoring::uncolored(1);
        let _ = analyze_orbits(&p, &c);
    }
}
