//! The homogeneous baseline: one transfer per disk per round.
//!
//! Prior work (Hall et al., SODA '01 — discussed in the paper's §II)
//! assumes every disk participates in at most one transfer at a time, i.e.
//! `c_v = 1` for everyone. Scheduling is then plain multigraph edge
//! coloring: each color class is a matching. Running this scheduler on a
//! heterogeneous instance is exactly the "ignore the extra parallelism"
//! strategy the paper's Fig. 2 argues against: on `K3` with `M` parallel
//! edges and true `c_v = 2` it needs `3M` rounds where `M` suffice.

use dmig_color::kempe::kempe_coloring;

use crate::{MigrationProblem, MigrationSchedule};

/// Schedules the instance as if every disk could run only one transfer at
/// a time (`c_v = 1`), via multigraph edge coloring.
///
/// The resulting schedule is always feasible for the real instance too
/// (every `c_v ≥ 1`), just unnecessarily long on heterogeneous hardware.
///
/// # Example
///
/// ```
/// use dmig_core::{homogeneous::solve_homogeneous, MigrationProblem};
/// use dmig_graph::builder::complete_multigraph;
///
/// let m = 4;
/// let p = MigrationProblem::uniform(complete_multigraph(3, m), 2)?;
/// let s = solve_homogeneous(&p);
/// s.validate(&p)?; // feasible, but…
/// assert!(s.makespan() >= 3 * m); // …3M rounds instead of the optimal M
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn solve_homogeneous(problem: &MigrationProblem) -> MigrationSchedule {
    let (coloring, _stats) = kempe_coloring(problem.graph());
    MigrationSchedule::from_coloring(&coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use dmig_graph::builder::{complete_multigraph, star_multigraph};
    use dmig_graph::Multigraph;

    #[test]
    fn empty_instance() {
        let p = MigrationProblem::uniform(Multigraph::with_nodes(1), 1).unwrap();
        assert_eq!(solve_homogeneous(&p).makespan(), 0);
    }

    #[test]
    fn matches_chromatic_index_on_k3() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 1).unwrap();
        let s = solve_homogeneous(&p);
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 6); // χ'(K3 with 2 parallel) = 3·2
    }

    #[test]
    fn fig2_gap_vs_heterogeneous() {
        let m = 3;
        let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
        let s = solve_homogeneous(&p);
        s.validate(&p).unwrap();
        assert!(s.makespan() >= 3 * m, "homogeneous pays the Fig. 2 penalty");
        assert_eq!(p.delta_prime(), m, "capacity-aware optimum is M");
    }

    #[test]
    fn feasible_for_heterogeneous_capacities() {
        let p = MigrationProblem::uniform(star_multigraph(5, 2), 3).unwrap();
        let s = solve_homogeneous(&p);
        s.validate(&p).unwrap();
        assert!(s.makespan() >= bounds::lower_bound(&p));
    }
}
