//! Sharded solving: cut the graph into bounded cells, solve cells on K
//! worker shards, reconcile cut edges with a round-aligned boundary pass.
//!
//! [`crate::parallel`] parallelizes across connected components; this
//! layer goes one step further and cuts *within* a heavy component using
//! [`dmig_graph::partition`]. The pipeline is:
//!
//! 1. **Partition** the graph into canonical cells of at most
//!    `max_cell_edges` domestic edges (a pure function of the instance —
//!    independent of shard count and thread count).
//! 2. **Solve** every cell as a standalone [`MigrationProblem`] on one of
//!    `K` worker shards (deterministic LPT grouping of cells; each extra
//!    shard worker draws a permit from the shared
//!    [`dmig_flow::pool::budget`], so shard-, component- and
//!    recursion-level parallelism together never exceed `--threads`).
//! 3. **Reconcile** foreign edges: cells are node-disjoint, so cell
//!    rounds merge index-wise exactly like component rounds; the cut
//!    edges form a *boundary* subproblem solved on its own, whose rounds
//!    are appended at a canonical offset (the merged cell makespan).
//!    Every merged round is still a capacity-respecting matching-per-
//!    round, and the makespan exceeds the instance's `Δ'` by at most the
//!    boundary's own `Δ'` — the additive gap is asserted and reported.
//!
//! Because steps 1 and 3 are canonical and step 2 writes into
//! cell-indexed slots, the schedule is byte-identical at every
//! `(threads × shards)` combination; when no component exceeds the cell
//! budget it equals the unsharded [`crate::parallel::solve_split`]
//! schedule exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dmig_flow::pool;
use dmig_graph::partition::{assign_shards, partition_cells, DEFAULT_MAX_CELL_EDGES};
use dmig_graph::{EdgeId, NodeId};

use crate::parallel::{extract_part, merge_component_schedules, ComponentPart};
use crate::{MigrationProblem, MigrationSchedule, SolveError};

/// Configuration of the sharded pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Worker shards to group cells onto (min 1). Controls concurrency
    /// only — never the schedule.
    pub shards: usize,
    /// Cell budget handed to [`partition_cells`]. Changing it changes the
    /// partition and therefore the schedule; the default
    /// ([`DEFAULT_MAX_CELL_EDGES`]) is part of the repo's deterministic
    /// contract.
    pub max_cell_edges: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            max_cell_edges: DEFAULT_MAX_CELL_EDGES,
        }
    }
}

impl ShardConfig {
    /// Default cell budget with an explicit shard count (min 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            ..ShardConfig::default()
        }
    }
}

/// What the sharded pipeline did, for perf reports and obs export.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Worker shards actually used (≤ configured, ≥ 1).
    pub shards: usize,
    /// Canonical cells the graph was cut into.
    pub cells: usize,
    /// Edges in the boundary set.
    pub cut_edges: usize,
    /// Total edges of the instance.
    pub total_edges: usize,
    /// Rounds of the boundary pass (0 when nothing was cut).
    pub boundary_rounds: usize,
    /// Realized additive gap: `makespan − Δ'(instance)` (clamped at 0).
    pub round_gap: usize,
    /// Proven additive bound: `Δ'` of the boundary subproblem.
    pub gap_bound: usize,
    /// Whether the `round_gap <= gap_bound` bound was applicable and
    /// asserted (it requires every piece to be solved to its own `Δ'`,
    /// which holds for the Theorem 4.1 even solver but not for
    /// approximate inner solvers).
    pub gap_asserted: bool,
    /// Milliseconds spent merging cell schedules and aligning the
    /// boundary rounds.
    pub reconcile_ms: u64,
    /// Domestic edges solved by each worker shard, indexed by shard id.
    pub per_shard_edges: Vec<u64>,
}

impl ShardReport {
    /// Fraction of edges cut to the boundary (0 for an edgeless graph).
    #[must_use]
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Solves `problem` through the sharded pipeline (see the module docs).
///
/// `solve` is the inner per-piece solver, invoked for every cell and once
/// for the boundary subproblem. The schedule is byte-identical for every
/// `(threads, config.shards)` combination; with the default cell budget
/// and no oversized component it equals
/// [`crate::parallel::solve_split`]'s schedule exactly.
///
/// # Errors
///
/// Returns the first (lowest cell index) error produced by `solve`, or
/// the boundary pass's error.
pub fn solve_sharded<F>(
    problem: &MigrationProblem,
    config: ShardConfig,
    threads: usize,
    solve: F,
) -> Result<(MigrationSchedule, ShardReport), SolveError>
where
    F: Fn(&MigrationProblem) -> Result<MigrationSchedule, SolveError> + Sync,
{
    let _span = dmig_obs::span_labeled("solve_sharded", || {
        format!("shards={} threads={threads}", config.shards)
    });
    // Same budget discipline as solve_split: one process-wide pool shared
    // by shard workers and the intra-piece quota recursion.
    pool::budget().set_parallelism(threads);

    dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::PARTITION);
    let partition = partition_cells(problem.graph(), config.max_cell_edges);
    let parts: Vec<ComponentPart> = partition
        .cells
        .iter()
        .map(|c| extract_part(problem, &c.nodes, &c.edges))
        .collect();

    let shards = config.shards.max(1).min(parts.len().max(1));
    let cell_edges: Vec<usize> = partition.cells.iter().map(|c| c.edges.len()).collect();
    let assignment = assign_shards(&cell_edges, shards);
    let mut per_shard_edges = vec![0u64; shards];
    for (cell, &s) in assignment.iter().enumerate() {
        per_shard_edges[s as usize] += cell_edges[cell] as u64;
    }

    dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::CELLS);
    dmig_obs::gauge_set(dmig_obs::keys::LIVE_ITEMS_DONE, 0);
    let schedules = solve_shard_cells(&parts, &assignment, shards, &solve)?;

    // Reconciliation: index-wise merge of the node-disjoint cells, then
    // the boundary pass appended at the canonical offset.
    dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::BOUNDARY);
    let reconcile_started = Instant::now();
    let merged = merge_component_schedules(&parts, &schedules);
    let boundary = if partition.boundary.is_empty() {
        None
    } else {
        let _span = dmig_obs::span_labeled("shard_boundary", || {
            format!("cut_edges={}", partition.boundary.len())
        });
        let mut nodes: Vec<NodeId> = Vec::with_capacity(partition.boundary.len() * 2);
        for &e in &partition.boundary {
            let ep = problem.graph().endpoints(e);
            nodes.push(ep.u);
            nodes.push(ep.v);
        }
        nodes.sort_unstable();
        nodes.dedup();
        let part = extract_part(problem, &nodes, &partition.boundary);
        let schedule = solve(&part.problem)?;
        Some((part, schedule))
    };

    let offset = merged.makespan();
    let boundary_rounds = boundary.as_ref().map_or(0, |(_, s)| s.makespan());
    let mut rounds: Vec<Vec<EdgeId>> = merged.rounds().to_vec();
    if let Some((part, schedule)) = &boundary {
        for round in schedule.rounds() {
            rounds.push(round.iter().map(|&e| part.edge_map[e.index()]).collect());
        }
    }
    let mut combined = MigrationSchedule::from_rounds(rounds);
    combined.trim_empty_rounds();
    let reconcile_ms = u64::try_from(reconcile_started.elapsed().as_millis()).unwrap_or(u64::MAX);

    // Realized additive gap vs. the proven bound. makespan = offset +
    // boundary_rounds, so when every cell met its own Δ' (≤ Δ'(G), always
    // true for the Theorem 4.1 solver) and the boundary met Δ'(boundary),
    // the gap is bounded by Δ'(boundary).
    let delta_prime = problem.delta_prime();
    let round_gap = combined.makespan().saturating_sub(delta_prime);
    let gap_bound = boundary
        .as_ref()
        .map_or(0, |(p, _)| p.problem.delta_prime());
    let gap_asserted = offset <= delta_prime && boundary_rounds <= gap_bound;
    if gap_asserted {
        assert!(
            round_gap <= gap_bound,
            "round-alignment gap {round_gap} exceeds the additive bound {gap_bound} \
             (Δ'={delta_prime}, boundary_rounds={boundary_rounds})"
        );
    }

    let report = ShardReport {
        shards,
        cells: parts.len(),
        cut_edges: partition.boundary.len(),
        total_edges: partition.total_edges,
        boundary_rounds,
        round_gap,
        gap_bound,
        gap_asserted,
        reconcile_ms,
        per_shard_edges,
    };
    record_shard_metrics(&report);
    Ok((combined, report))
}

/// Exports the shard telemetry (no-ops when the obs layer is disabled).
fn record_shard_metrics(report: &ShardReport) {
    use dmig_obs::keys;
    dmig_obs::gauge_set(keys::SHARD_COUNT, report.shards as u64);
    dmig_obs::gauge_set(keys::SHARD_CUT_EDGES, report.cut_edges as u64);
    // Gauges are integers; export the fraction in basis points (1/10000).
    let bps = if report.total_edges == 0 {
        0
    } else {
        (report.cut_edges as u64).saturating_mul(10_000) / report.total_edges as u64
    };
    dmig_obs::gauge_set(keys::SHARD_CUT_FRACTION, bps);
    dmig_obs::gauge_set(keys::SHARD_BOUNDARY_ROUNDS, report.boundary_rounds as u64);
    dmig_obs::counter_add(keys::SHARD_RECONCILE_MS, report.reconcile_ms);
}

/// Solves every cell into its slot, with one claim-loop worker per shard.
///
/// Workers claim *shard bins*, not cells: shard `s` solves exactly the
/// cells assigned to it, in ascending cell order, matching what a
/// distributed deployment would do. Extra workers beyond the calling
/// thread come from the shared pool budget; with no permits left the
/// calling thread solves every bin serially — the slots make the outcome
/// identical either way.
fn solve_shard_cells<F>(
    parts: &[ComponentPart],
    assignment: &[u32],
    shards: usize,
    solve: &F,
) -> Result<Vec<MigrationSchedule>, SolveError>
where
    F: Fn(&MigrationProblem) -> Result<MigrationSchedule, SolveError> + Sync,
{
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (cell, &s) in assignment.iter().enumerate() {
        bins[s as usize].push(cell);
    }

    // Live progress for a mid-run scrape: bins currently being solved and
    // cells finished so far. Gauges only — the schedule cannot depend on
    // them (obs_transparency proptests hold this).
    let cells_done = AtomicUsize::new(0);
    let solve_bin =
        |parent: Option<dmig_obs::SpanId>,
         shard: usize,
         slots: &[Mutex<Option<Result<MigrationSchedule, SolveError>>>]| {
            let _span = dmig_obs::span_under(parent, "shard", || {
                format!("#{shard} cells={}", bins[shard].len())
            });
            dmig_obs::gauge_add(dmig_obs::keys::LIVE_SHARD_ACTIVE, 1);
            for &cell in &bins[shard] {
                let part = &parts[cell];
                let span = dmig_obs::span_labeled("shard_cell", || {
                    format!(
                        "#{cell} disks={} items={}",
                        part.problem.num_disks(),
                        part.problem.num_items()
                    )
                });
                let result = solve(&part.problem);
                drop(span);
                *slots[cell].lock().expect("cell slot poisoned") = Some(result);
                let done = cells_done.fetch_add(1, Ordering::Relaxed) + 1;
                dmig_obs::gauge_set(dmig_obs::keys::LIVE_ITEMS_DONE, done as u64);
            }
            dmig_obs::gauge_add(dmig_obs::keys::LIVE_SHARD_ACTIVE, -1);
        };

    let slots: Vec<Mutex<Option<Result<MigrationSchedule, SolveError>>>> =
        parts.iter().map(|_| Mutex::new(None)).collect();
    let permits: Vec<pool::WorkerPermit<'_>> =
        pool::budget().try_acquire_many(shards.saturating_sub(1));
    if permits.is_empty() {
        for shard in 0..shards {
            solve_bin(None, shard, &slots);
        }
    } else {
        let parent = dmig_obs::current_span();
        let next = AtomicUsize::new(0);
        let work = |span_parent: Option<dmig_obs::SpanId>| loop {
            let shard = next.fetch_add(1, Ordering::Relaxed);
            if shard >= shards {
                break;
            }
            solve_bin(span_parent, shard, &slots);
        };
        std::thread::scope(|scope| {
            for permit in permits {
                let work = &work;
                scope.spawn(move || {
                    let _permit = permit;
                    work(parent);
                });
            }
            work(None);
        });
    }

    // Lowest cell index's error wins, as in solve_components.
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .expect("every cell slot is filled before scope exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::solve_split;
    use dmig_graph::builder::GraphBuilder;

    /// One heavy path component plus a small separate triangle.
    fn mixed_problem() -> MigrationProblem {
        let mut b = GraphBuilder::new().nodes(43);
        for i in 0..40 {
            b = b.edge(i, i + 1);
        }
        b = b.edge(41, 42).edge(42, 41).edge(41, 42).edge(42, 41);
        MigrationProblem::uniform(b.build(), 2).unwrap()
    }

    #[test]
    fn uncut_sharding_equals_solve_split() {
        let p = mixed_problem();
        let plain = solve_split(&p, 2, crate::even::solve_even).unwrap();
        for shards in [1, 2, 4] {
            for threads in [1, 4] {
                let (s, r) = solve_sharded(
                    &p,
                    ShardConfig::with_shards(shards),
                    threads,
                    crate::even::solve_even,
                )
                .unwrap();
                assert_eq!(s, plain, "shards={shards} threads={threads}");
                assert_eq!(r.cut_edges, 0);
                assert_eq!(r.round_gap, 0);
                assert_eq!(r.boundary_rounds, 0);
                assert!(r.gap_asserted);
                assert_eq!(r.per_shard_edges.iter().sum::<u64>(), p.num_items() as u64);
            }
        }
    }

    #[test]
    fn forced_cut_is_deterministic_valid_and_gap_bounded() {
        let p = mixed_problem();
        let config = ShardConfig {
            shards: 2,
            max_cell_edges: 8,
        };
        let (base, report) = solve_sharded(&p, config, 1, crate::even::solve_even).unwrap();
        base.validate(&p).unwrap();
        assert!(report.cut_edges > 0, "small budget must cut the path");
        assert!(report.cells > 1);
        assert!(report.boundary_rounds > 0);
        assert!(report.gap_asserted);
        assert!(report.round_gap <= report.gap_bound);
        assert!(report.cut_fraction() > 0.0 && report.cut_fraction() < 1.0);
        for shards in [1, 3, 8] {
            for threads in [1, 2, 4] {
                let cfg = ShardConfig {
                    shards,
                    max_cell_edges: 8,
                };
                let (s, r) = solve_sharded(&p, cfg, threads, crate::even::solve_even).unwrap();
                assert_eq!(s, base, "shards={shards} threads={threads}");
                assert_eq!(r.cut_edges, report.cut_edges);
            }
        }
    }

    #[test]
    fn empty_problem_shards_cleanly() {
        let p = MigrationProblem::uniform(dmig_graph::Multigraph::with_nodes(3), 2).unwrap();
        let (s, r) =
            solve_sharded(&p, ShardConfig::with_shards(4), 2, crate::even::solve_even).unwrap();
        assert_eq!(s.makespan(), 0);
        assert_eq!(r.cells, 0);
        assert_eq!(r.cut_edges, 0);
        assert_eq!(r.cut_fraction(), 0.0);
    }

    #[test]
    fn inner_error_surfaces_from_lowest_cell() {
        // Odd capacity on the first component makes solve_even fail there.
        let g = GraphBuilder::new().edge(0, 1).edge(2, 3).build();
        let p = MigrationProblem::new(g, crate::Capacities::from_vec(vec![1, 1, 2, 2])).unwrap();
        let err =
            solve_sharded(&p, ShardConfig::with_shards(2), 2, crate::even::solve_even).unwrap_err();
        match err {
            SolveError::OddCapacity { node, .. } => assert_eq!(node.index(), 0),
            other => panic!("unexpected error {other}"),
        }
    }
}
