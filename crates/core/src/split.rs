//! Node splitting: turning transfer constraints into plain degree bounds.
//!
//! Splitting disk `v` into `c_v` copies and distributing its incident
//! transfers round-robin over the copies turns a capacitated coloring
//! problem into an ordinary edge-coloring problem: a proper coloring of the
//! split graph uses each color at most once per copy, hence at most `c_v`
//! times per original disk. Every copy receives at most `⌈d_v / c_v⌉`
//! edges, so the split graph has maximum degree `Δ' = LB1`.
//!
//! This construction is the engine of Saia's 1.5-approximation (§I–II of
//! the paper), of the bipartite-optimal solver, and of Phase 2 of the
//! general algorithm (§V-C3).

use dmig_graph::{Multigraph, NodeId};

use crate::{Capacities, MigrationProblem};

/// A node-split view of a migration problem.
///
/// Split-graph edge `i` corresponds to original edge `i` (ids align), so a
/// coloring of [`SplitGraph::graph`] transfers back verbatim.
#[derive(Clone, Debug)]
pub struct SplitGraph {
    /// The split multigraph over `Σ_v c_v` copy-nodes.
    pub graph: Multigraph,
    /// `offset[v]` = first copy-node index of original node `v`.
    pub offset: Vec<usize>,
    /// `owner[s]` = original node of copy-node `s`.
    pub owner: Vec<NodeId>,
}

impl SplitGraph {
    /// Maximum degree of the split graph; equals
    /// `Δ' = max_v ⌈d_v / c_v⌉` for a round-robin split.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }
}

/// Splits each disk `v` into `c_v` copies, distributing its incident
/// transfers round-robin so every copy carries at most `⌈d_v / c_v⌉`.
///
/// # Panics
///
/// Panics if some disk with incident transfers has capacity 0 (ruled out
/// by [`MigrationProblem`] validation).
#[must_use]
pub fn split_round_robin(problem: &MigrationProblem) -> SplitGraph {
    split_graph_round_robin(problem.graph(), problem.capacities())
}

/// Round-robin split of an arbitrary graph/capacity pair (used by Phase 2
/// of the general solver on residue subgraphs).
///
/// # Panics
///
/// Panics if a node with incident edges has capacity 0, or on self-loops.
#[must_use]
pub fn split_graph_round_robin(g: &Multigraph, caps: &Capacities) -> SplitGraph {
    let n = g.num_nodes();
    let mut offset = Vec::with_capacity(n);
    let mut owner = Vec::new();
    let mut total = 0usize;
    for v in g.nodes() {
        offset.push(total);
        let c = caps.get(v) as usize;
        if g.degree(v) > 0 {
            assert!(c > 0, "node {v} has edges but zero capacity");
        }
        for _ in 0..c {
            owner.push(v);
        }
        total += c;
    }

    let mut split = Multigraph::with_nodes(total);
    let mut cursor = vec![0usize; n];
    for (_, ep) in g.edges() {
        assert!(!ep.is_loop(), "split of a self-loop is undefined");
        let cu = caps.get(ep.u) as usize;
        let cv = caps.get(ep.v) as usize;
        let su = offset[ep.u.index()] + cursor[ep.u.index()] % cu;
        cursor[ep.u.index()] += 1;
        let sv = offset[ep.v.index()] + cursor[ep.v.index()] % cv;
        cursor[ep.v.index()] += 1;
        split.add_edge(NodeId::new(su), NodeId::new(sv));
    }
    SplitGraph {
        graph: split,
        offset,
        owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{complete_multigraph, star_multigraph};

    #[test]
    fn split_degrees_bounded_by_delta_prime() {
        let p = MigrationProblem::uniform(complete_multigraph(4, 5), 3).unwrap();
        let split = split_round_robin(&p);
        assert_eq!(split.graph.num_edges(), p.num_items());
        assert_eq!(split.graph.num_nodes(), 12);
        assert_eq!(split.max_degree(), p.delta_prime());
    }

    #[test]
    fn copies_mapped_back_to_owner() {
        let p = MigrationProblem::uniform(star_multigraph(3, 2), 2).unwrap();
        let split = split_round_robin(&p);
        for (e, _) in p.graph().edges() {
            let sep = split.graph.endpoints(e);
            let oep = p.graph().endpoints(e);
            let owners = [split.owner[sep.u.index()], split.owner[sep.v.index()]];
            assert!(owners.contains(&oep.u) && owners.contains(&oep.v));
        }
    }

    #[test]
    fn per_copy_load_is_balanced() {
        // Hub with degree 10 and capacity 4: copies get ⌈10/4⌉ = 3 at most.
        let p = MigrationProblem::new(
            star_multigraph(10, 1),
            Capacities::from_vec(
                std::iter::once(4u32)
                    .chain(std::iter::repeat(1).take(10))
                    .collect(),
            ),
        )
        .unwrap();
        let split = split_round_robin(&p);
        for s in 0..4 {
            let d = split.graph.degree(NodeId::new(s));
            assert!(d <= 3, "copy {s} overloaded: {d}");
        }
        assert_eq!(split.max_degree(), 3);
    }

    #[test]
    fn capacity_one_split_is_identity_shaped() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 2), 1).unwrap();
        let split = split_round_robin(&p);
        assert_eq!(split.graph.num_nodes(), 3);
        assert_eq!(split.max_degree(), 4);
        assert_eq!(split.offset, vec![0, 1, 2]);
    }

    #[test]
    fn zero_capacity_isolated_nodes_allowed() {
        let mut g = complete_multigraph(2, 1);
        g.add_node(); // isolated
        let p = MigrationProblem::new(g, Capacities::from_vec(vec![1, 1, 0])).unwrap();
        let split = split_round_robin(&p);
        assert_eq!(split.graph.num_nodes(), 2);
    }
}
