//! Sharding must be invisible in the output: the sharded pipeline has to
//! reproduce the unsharded schedule byte-for-byte at every
//! `(shards × threads × recorder)` combination, and when a small cell
//! budget forces real cuts the plan must stay valid, self-identical, and
//! within the round-alignment additive bound of Theorem 4.1.

use std::sync::{Mutex, MutexGuard, PoisonError};

use dmig_core::even::solve_even;
use dmig_core::parallel::solve_split;
use dmig_core::shard::{solve_sharded, ShardConfig};
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::{Capacities, MigrationProblem};
use dmig_graph::partition::partition_cells;
use dmig_graph::GraphBuilder;
use proptest::prelude::*;

/// The recorder is process-global; every test in this binary that touches
/// it must hold this lock for its full enable/snapshot window.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores "disabled, empty" even when an assertion panics mid-test.
struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
    }
}

/// Restores the shared worker pool's 1-thread budget even when an
/// assertion panics mid-test.
struct PoolCleanup;
impl Drop for PoolCleanup {
    fn drop(&mut self) {
        dmig_flow::pool::budget().set_parallelism(1);
    }
}

/// Random multigraph (possibly disconnected, possibly with isolated
/// nodes) with mixed-parity capacities — exercises every solver path
/// through `AutoSolver`.
fn arb_problem() -> impl Strategy<Value = MigrationProblem> {
    (2usize..10)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..24),
                proptest::collection::vec(1u32..5, n),
            )
        })
        .prop_map(|(n, edges, caps)| {
            let mut b = GraphBuilder::new().nodes(n);
            for (u, v) in edges {
                if u != v {
                    b = b.edge(u, v);
                }
            }
            MigrationProblem::new(b.build(), Capacities::from_vec(caps))
                .expect("generated instance is valid")
        })
}

/// Connected multigraph with all-even capacities: one giant component, so
/// a small cell budget forces the partitioner to actually cut it.
fn arb_connected_even_problem() -> impl Strategy<Value = MigrationProblem> {
    (4usize..9)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(1usize..4, n - 1),
                proptest::collection::vec((0..n, 0..n, 1usize..4), 0..8),
                proptest::collection::vec(1u32..4, n),
            )
        })
        .prop_map(|(n, spine, extras, half_caps)| {
            let mut b = GraphBuilder::new().nodes(n);
            for (i, mult) in spine.into_iter().enumerate() {
                b = b.parallel_edges(i, i + 1, mult);
            }
            for (u, v, mult) in extras {
                if u != v {
                    b = b.parallel_edges(u, v, mult);
                }
            }
            let caps: Vec<u32> = half_caps.into_iter().map(|h| 2 * h).collect();
            MigrationProblem::new(b.build(), Capacities::from_vec(caps))
                .expect("generated instance is valid")
        })
}

/// Every edge of `g` must land in exactly one cell's domestic set or the
/// boundary set — no drops, no double coverage.
fn assert_full_coverage(
    g: &dmig_graph::Multigraph,
    partition: &dmig_graph::partition::CellPartition,
) -> Result<(), TestCaseError> {
    let mut covered = vec![0u32; g.num_edges()];
    for cell in &partition.cells {
        for &e in &cell.edges {
            covered[e.index()] += 1;
        }
    }
    for &e in &partition.boundary {
        covered[e.index()] += 1;
    }
    for (e, &count) in covered.iter().enumerate() {
        prop_assert_eq!(count, 1, "edge {} covered {} times", e, count);
    }
    prop_assert_eq!(partition.total_edges, g.num_edges());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At the default cell budget these instances never need a cut, so
    /// the sharded pipeline must equal the plain component-parallel
    /// schedule byte-for-byte across shards {1,2,4} × threads {1,4} ×
    /// recorder {off,on}.
    #[test]
    fn sharded_equals_unsharded_at_default_budget(p in arb_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        let solve = |q: &MigrationProblem| AutoSolver.solve(q);
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
        let plain = solve_split(&p, 1, solve).expect("solves");
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 4] {
                for recorder in [false, true] {
                    dmig_obs::reset();
                    dmig_obs::set_enabled(recorder);
                    let (sharded, report) = solve_sharded(
                        &p,
                        ShardConfig::with_shards(shards),
                        threads,
                        solve,
                    )
                    .expect("solves");
                    dmig_obs::set_enabled(false);
                    prop_assert_eq!(
                        &plain, &sharded,
                        "shards = {}, threads = {}, recorder = {}",
                        shards, threads, recorder
                    );
                    prop_assert_eq!(report.cut_edges, 0, "nothing to cut at 2^18");
                    prop_assert_eq!(report.round_gap, 0);
                    prop_assert_eq!(
                        report.per_shard_edges.iter().sum::<u64>(),
                        p.num_items() as u64
                    );
                }
            }
        }
    }

    /// A tiny cell budget forces real cuts on a connected instance. The
    /// schedule must stay valid, identical across every
    /// `(shards × threads × recorder)` combination, and — with the
    /// Theorem 4.1 even solver inside — within the additive
    /// `Δ'(boundary)` round bound.
    #[test]
    fn forced_cut_stays_valid_identical_and_gap_bounded(p in arb_connected_even_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        let config = ShardConfig { shards: 1, max_cell_edges: 4 };
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
        let (base, report) = solve_sharded(&p, config, 1, solve_even).expect("even solves");
        base.validate(&p).expect("sharded schedule is feasible");
        prop_assert!(report.gap_asserted, "even solver meets every piece's Δ'");
        prop_assert!(
            report.round_gap <= report.gap_bound,
            "gap {} exceeds bound {}", report.round_gap, report.gap_bound
        );
        if p.num_items() > 4 {
            // Budget 4 must break the component apart — into several
            // cells, or (degenerate pieces compacted away) into boundary
            // edges.
            prop_assert!(
                report.cells > 1 || report.cut_edges > 0,
                "budget 4 left {} edges whole", p.num_items()
            );
        }
        for shards in [2usize, 4] {
            for threads in [1usize, 4] {
                for recorder in [false, true] {
                    dmig_obs::reset();
                    dmig_obs::set_enabled(recorder);
                    let cfg = ShardConfig { shards, max_cell_edges: 4 };
                    let (s, r) = solve_sharded(&p, cfg, threads, solve_even)
                        .expect("even solves");
                    dmig_obs::set_enabled(false);
                    prop_assert_eq!(
                        &base, &s,
                        "shards = {}, threads = {}, recorder = {}",
                        shards, threads, recorder
                    );
                    prop_assert_eq!(r.cut_edges, report.cut_edges);
                    prop_assert_eq!(r.boundary_rounds, report.boundary_rounds);
                }
            }
        }
    }

    /// The cell partition covers every edge exactly once (one cell's
    /// domestic set or the boundary), at any budget.
    #[test]
    fn partition_covers_every_edge_exactly_once(p in arb_problem()) {
        // A piece may overshoot its balanced share by the last absorbed
        // node's gain, so the hard per-cell bound is budget + max degree.
        let slack = p.graph().max_degree();
        for budget in [1usize, 4, 64] {
            let partition = partition_cells(p.graph(), budget);
            assert_full_coverage(p.graph(), &partition)?;
            for cell in &partition.cells {
                prop_assert!(
                    cell.edges.len() <= budget.max(1) + slack,
                    "cell overflows budget {}: {} edges", budget, cell.edges.len()
                );
            }
        }
    }
}
