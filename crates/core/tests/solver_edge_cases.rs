//! Edge-case and cross-solver agreement tests for the scheduling core.

use dmig_core::solver::{
    all_solvers, AutoSolver, BipartiteOptimalSolver, EvenOptimalSolver, GeneralSolver, Solver,
};
use dmig_core::{bounds, exact::solve_exact, general::solve_general, Capacities, MigrationProblem};
use dmig_graph::builder::{
    complete_multigraph, cycle_multigraph, path_multigraph, star_multigraph,
};
use dmig_graph::{GraphBuilder, Multigraph};

#[test]
fn capacity_larger_than_degree_is_one_round() {
    // Every disk can take far more transfers than it has: 1 round.
    let g = complete_multigraph(4, 1);
    let p = MigrationProblem::uniform(g, 100).unwrap();
    assert_eq!(p.delta_prime(), 1);
    for solver in [&AutoSolver as &dyn Solver, &GeneralSolver::default()] {
        let s = solver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 1, "{}", solver.name());
    }
}

#[test]
fn single_pair_with_huge_multiplicity() {
    let g = GraphBuilder::new().parallel_edges(0, 1, 1000).build();
    let p = MigrationProblem::new(g, Capacities::from_vec(vec![8, 4])).unwrap();
    // Bottleneck is the c=4 disk: ⌈1000/4⌉ = 250 rounds.
    assert_eq!(p.delta_prime(), 250);
    let s = AutoSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), 250);
}

#[test]
fn saturated_star_drains_at_hub_rate() {
    let g = star_multigraph(10, 3); // hub degree 30
    let p = MigrationProblem::new(
        g,
        Capacities::from_vec(
            std::iter::once(5u32)
                .chain(std::iter::repeat(3).take(10))
                .collect(),
        ),
    )
    .unwrap();
    assert_eq!(p.delta_prime(), 6); // ⌈30/5⌉
    let s = GeneralSolver::default().solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), 6);
}

#[test]
fn three_way_agreement_on_even_bipartite_instances() {
    // Even caps + bipartite: even solver, bipartite solver, and exact
    // solver must all deliver Δ' rounds.
    let g = GraphBuilder::new()
        .parallel_edges(0, 2, 3)
        .parallel_edges(1, 2, 2)
        .parallel_edges(0, 3, 1)
        .build();
    let p = MigrationProblem::uniform(g, 2).unwrap();
    let target = p.delta_prime();
    let even = EvenOptimalSolver.solve(&p).unwrap();
    let bip = BipartiteOptimalSolver.solve(&p).unwrap();
    let exact = solve_exact(&p).unwrap();
    for (name, s) in [
        ("even", &even),
        ("bipartite", &bip),
        ("exact", &exact.schedule),
    ] {
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), target, "{name}");
    }
}

#[test]
fn general_solver_is_deterministic() {
    let g = complete_multigraph(6, 3);
    let p = MigrationProblem::new(g, Capacities::from_vec(vec![1, 2, 3, 4, 5, 3])).unwrap();
    let a = solve_general(&p);
    let b = solve_general(&p);
    assert_eq!(
        a.schedule, b.schedule,
        "same input must give the same schedule"
    );
    assert_eq!(a.stats, b.stats);
}

#[test]
fn paths_are_bipartite_and_hit_lb() {
    for m in [1usize, 3] {
        let p = MigrationProblem::uniform(path_multigraph(9, m), 3).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
    }
}

#[test]
fn wheel_like_graphs_stay_near_lb() {
    // Cycle + hub connected to every rim node.
    let n = 9;
    let mut b = GraphBuilder::new().nodes(n + 1);
    for u in 0..n {
        b = b.edge(u, (u + 1) % n).edge(u, n);
    }
    let p = MigrationProblem::uniform(b.build(), 2).unwrap();
    let s = AutoSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert!(s.makespan() <= bounds::lower_bound(&p) + 1);
}

#[test]
fn odd_cycles_certified_by_sharp_bound_and_exact() {
    for n in [3usize, 5, 7] {
        let p = MigrationProblem::uniform(cycle_multigraph(n, 2), 2).unwrap();
        // m=2 doubles the cycle: even caps → exactly Δ' = 2.
        let s = EvenOptimalSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), 2);

        // The hard case is m=1, c=1.
        let p1 = MigrationProblem::uniform(cycle_multigraph(n, 1), 1).unwrap();
        let sharp = bounds::lower_bound_sharp(&p1);
        let opt = solve_exact(&p1).unwrap().optimum;
        assert_eq!(sharp, 3, "Γ'' certifies the odd cycle");
        assert_eq!(opt, 3);
    }
}

#[test]
fn mixed_capacity_extremes() {
    // One disk with c=1 neighboring a c=100 disk: the c=1 side paces.
    let g = GraphBuilder::new().parallel_edges(0, 1, 7).build();
    let p = MigrationProblem::new(g, Capacities::from_vec(vec![1, 100])).unwrap();
    assert_eq!(p.delta_prime(), 7);
    let s = GeneralSolver::default().solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), 7);
}

#[test]
fn all_solvers_cope_with_one_item() {
    // c = 2 so even the parity-restricted solver applies; the graph is
    // bipartite so every registry member is in-domain.
    let g = GraphBuilder::new().edge(0, 1).build();
    let p = MigrationProblem::uniform(g, 2).unwrap();
    for solver in all_solvers() {
        match solver.solve(&p) {
            Ok(s) => {
                s.validate(&p).unwrap();
                assert_eq!(s.makespan(), 1, "{}", solver.name());
            }
            Err(e) => panic!("{} failed on the trivial instance: {e}", solver.name()),
        }
    }
}

#[test]
fn disconnected_heterogeneous_islands() {
    // Three islands with different shapes and capacity regimes.
    let mut g = Multigraph::with_nodes(9);
    for _ in 0..4 {
        g.add_edge(0.into(), 1.into());
    }
    g.add_edge(2.into(), 3.into());
    g.add_edge(3.into(), 4.into());
    g.add_edge(4.into(), 2.into());
    for _ in 0..6 {
        g.add_edge(5.into(), 6.into());
        g.add_edge(7.into(), 8.into());
    }
    let caps = Capacities::from_vec(vec![2, 2, 1, 1, 1, 3, 3, 6, 6]);
    let p = MigrationProblem::new(g, caps).unwrap();
    let s = GeneralSolver::default().solve(&p).unwrap();
    s.validate(&p).unwrap();
    // Islands are independent: the worst island (the triangle at c=1,
    // OPT 3) and the 4-parallel pair at c=2 (2 rounds) and 6/3=2 →
    // lower bound is max(2, 2, 3) = 3.
    assert!(s.makespan() >= 3);
    assert!(s.makespan() <= 4);
}

#[test]
fn stats_survive_extreme_configs() {
    use dmig_core::general::{solve_general_with, GeneralConfig, ResidueStrategy};
    let p = MigrationProblem::uniform(complete_multigraph(5, 2), 3).unwrap();
    for config in [
        GeneralConfig {
            shift_depth: 0,
            shift_fanout: 0,
            ..Default::default()
        },
        GeneralConfig {
            work_budget: 0,
            ..Default::default()
        },
        GeneralConfig {
            residue_strategy: ResidueStrategy::SplitColor,
            shift_depth: 1,
            ..Default::default()
        },
    ] {
        let r = solve_general_with(&p, &config);
        r.schedule.validate(&p).unwrap();
        let colored =
            r.stats.direct + r.stats.walk_flips + r.stats.shifts + r.stats.residue_colored;
        assert_eq!(colored, p.num_items());
    }
}
