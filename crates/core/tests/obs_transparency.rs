//! Observability must be transparent: enabling the recorder may not change
//! any computed schedule, and its counters must match the closed-form
//! predictions of the quota recursion (Theorem 4.1's decomposition does
//! one flow solve per odd level and one Euler split per even level).

use std::sync::{Mutex, MutexGuard, PoisonError};

use dmig_core::even::solve_even;
use dmig_core::parallel::solve_split;
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::{Capacities, MigrationProblem};
use dmig_flow::{quota_euler_splits, quota_flow_solves};
use dmig_graph::builder::complete_multigraph;
use dmig_graph::GraphBuilder;
use proptest::prelude::*;

/// The recorder is process-global; every test in this binary that touches
/// it must hold this lock for its full enable/snapshot window.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores "disabled, empty" even when an assertion panics mid-test.
struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
    }
}

/// Restores the shared worker pool's defaults (spawn floor, 1-thread
/// budget) even when an assertion panics mid-test.
struct PoolCleanup;
impl Drop for PoolCleanup {
    fn drop(&mut self) {
        dmig_flow::pool::set_spawn_min_work(dmig_flow::pool::DEFAULT_SPAWN_MIN_WORK);
        dmig_flow::pool::budget().set_parallelism(1);
    }
}

/// Random connected-or-not multigraph with mixed-parity capacities — the
/// kind of instance that exercises every solver path through `AutoSolver`.
fn arb_problem() -> impl Strategy<Value = MigrationProblem> {
    (2usize..8)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..20),
                proptest::collection::vec(1u32..5, n),
            )
        })
        .prop_map(|(n, edges, caps)| {
            let mut b = GraphBuilder::new().nodes(n);
            for (u, v) in edges {
                if u != v {
                    b = b.edge(u, v);
                }
            }
            MigrationProblem::new(b.build(), Capacities::from_vec(caps))
                .expect("generated instance is valid")
        })
}

/// Connected multigraph with all-even capacities — a **single giant
/// component**, so `solve_split`'s spare threads all land on the
/// intra-component quota recursion instead of the component fan-out.
fn arb_connected_even_problem() -> impl Strategy<Value = MigrationProblem> {
    (2usize..7)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(1usize..4, n - 1),
                proptest::collection::vec((0..n, 0..n, 1usize..4), 0..8),
                proptest::collection::vec(1u32..4, n),
            )
        })
        .prop_map(|(n, spine, extras, half_caps)| {
            let mut b = GraphBuilder::new().nodes(n);
            // Path spine keeps the graph connected; extras add parallel
            // bundles that push Δ' up and deepen the recursion tree.
            for (i, mult) in spine.into_iter().enumerate() {
                b = b.parallel_edges(i, i + 1, mult);
            }
            for (u, v, mult) in extras {
                if u != v {
                    b = b.parallel_edges(u, v, mult);
                }
            }
            let caps: Vec<u32> = half_caps.into_iter().map(|h| 2 * h).collect();
            MigrationProblem::new(b.build(), Capacities::from_vec(caps))
                .expect("generated instance is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The schedule is identical with the recorder enabled and disabled,
    /// at every thread count: instrumentation observes, never steers.
    /// Zeroing the spawn floor forces the intra-component recursion to
    /// recruit workers even on these tiny instances.
    #[test]
    fn recorder_never_changes_the_schedule(p in arb_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        dmig_flow::pool::set_spawn_min_work(0);
        let solve = |q: &MigrationProblem| AutoSolver.solve(q);
        for threads in 1usize..=4 {
            dmig_obs::set_enabled(false);
            dmig_obs::reset();
            let plain = solve_split(&p, threads, solve).expect("solves");
            dmig_obs::reset();
            dmig_obs::set_enabled(true);
            let instrumented = solve_split(&p, threads, solve).expect("solves");
            dmig_obs::set_enabled(false);
            prop_assert_eq!(&plain, &instrumented, "threads = {}", threads);
        }
    }

    /// Every recorded run exports to a well-formed Chrome trace: the JSON
    /// parses, every `E` event closes the matching open `B` on its own
    /// track, and per-track timestamps are monotone (all enforced by
    /// `validate_chrome_trace`). Export itself is pure — serializing twice
    /// is byte-identical, a fresh snapshot after an export serializes to
    /// the same trace, and a solve that follows an export still produces
    /// the same schedule.
    #[test]
    fn trace_export_is_valid_and_pure(p in arb_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        dmig_flow::pool::set_spawn_min_work(0);
        let solve = |q: &MigrationProblem| AutoSolver.solve(q);
        dmig_obs::reset();
        dmig_obs::set_enabled(true);
        let first = solve_split(&p, 2, solve).expect("solves");
        let snap = dmig_obs::snapshot();
        let trace = dmig_obs::trace::chrome_trace_of(&snap);
        let stats = match dmig_obs::trace::validate_chrome_trace(&trace) {
            Ok(stats) => stats,
            Err(why) => return Err(TestCaseError::fail(format!("invalid trace: {why}"))),
        };
        prop_assert!(stats.begins >= 1, "a solve records at least one span");
        prop_assert_eq!(stats.begins, stats.ends, "every B has a matching E");
        prop_assert_eq!(stats.open, 0, "no span is left open after solving");
        prop_assert!(!stats.tracks.is_empty());
        prop_assert_eq!(&trace, &dmig_obs::trace::chrome_trace_of(&snap));
        prop_assert_eq!(
            &trace,
            &dmig_obs::trace::chrome_trace_of(&dmig_obs::snapshot()),
            "export must not perturb recorder state"
        );
        let second = solve_split(&p, 2, solve).expect("solves");
        dmig_obs::set_enabled(false);
        prop_assert_eq!(&first, &second, "export must not steer the solver");
    }

    /// The background sampling profiler is schedule-transparent: with the
    /// recorder enabled and the sampler ticking at an aggressive 1ms
    /// interval, the schedule stays byte-identical to the unsampled,
    /// uninstrumented run at every thread count. The sampler only *reads*
    /// open spans and writes its own `prof.*`/`mem.*` keys — nothing the
    /// solver ever consults.
    #[test]
    fn sampler_never_changes_the_schedule(p in arb_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        dmig_flow::pool::set_spawn_min_work(0);
        let solve = |q: &MigrationProblem| AutoSolver.solve(q);
        for threads in [1usize, 4] {
            dmig_obs::set_enabled(false);
            dmig_obs::reset();
            let plain = solve_split(&p, threads, solve).expect("solves");
            dmig_obs::reset();
            dmig_obs::set_enabled(true);
            let sampler = dmig_obs::sampler::start(std::time::Duration::from_millis(1));
            let sampled = solve_split(&p, threads, solve).expect("solves");
            sampler.stop();
            dmig_obs::set_enabled(false);
            prop_assert_eq!(&plain, &sampled, "threads = {}", threads);
        }
    }

    /// Intra-component parallelism is schedule-transparent: on a single
    /// connected component every spare thread flows to the quota
    /// recursion, and the schedule must stay byte-identical across thread
    /// counts 1–4, with the recorder enabled and disabled.
    #[test]
    fn intra_parallel_schedule_is_thread_count_invariant(p in arb_connected_even_problem()) {
        let _g = obs_lock();
        let _cleanup = Cleanup;
        let _pool = PoolCleanup;
        dmig_flow::pool::set_spawn_min_work(0);
        let baseline = solve_split(&p, 1, solve_even).expect("even instance solves");
        for threads in 2usize..=4 {
            for enabled in [false, true] {
                dmig_obs::reset();
                dmig_obs::set_enabled(enabled);
                let schedule = solve_split(&p, threads, solve_even).expect("even instance solves");
                dmig_obs::set_enabled(false);
                prop_assert_eq!(
                    &baseline, &schedule,
                    "threads = {}, recorder = {}", threads, enabled
                );
            }
        }
    }
}

/// On the paper's K3 family (caps 2, Δ' = M) the `flow_solves` and
/// `euler_splits` counters equal the closed-form recursion counts.
#[test]
fn counters_match_quota_recursion_prediction() {
    let _g = obs_lock();
    let _cleanup = Cleanup;
    for m in 1usize..=6 {
        let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
        assert_eq!(p.delta_prime(), m);
        dmig_obs::reset();
        dmig_obs::set_enabled(true);
        let s = solve_even(&p).unwrap();
        dmig_obs::set_enabled(false);
        let snap = dmig_obs::snapshot();
        assert_eq!(s.makespan(), m);
        let counter = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
        assert_eq!(
            counter(dmig_obs::keys::FLOW_SOLVES),
            quota_flow_solves(m),
            "flow solves at Δ' = {m}"
        );
        assert_eq!(
            counter(dmig_obs::keys::EULER_SPLITS),
            quota_euler_splits(m),
            "euler splits at Δ' = {m}"
        );
    }
}
