//! First-fit greedy edge coloring.

use dmig_graph::Multigraph;

use crate::EdgeColoring;

/// Colors the edges of `g` greedily: each edge takes the smallest color not
/// already used at either endpoint.
///
/// Uses at most `2Δ − 1` colors on loop-free multigraphs (each endpoint
/// blocks at most `Δ − 1` colors). This is the simplest correct scheduler
/// for the homogeneous (`c_v = 1`) migration model and the baseline the
/// smarter colorers are measured against.
///
/// # Panics
///
/// Panics if `g` contains self-loops (no proper coloring exists).
///
/// # Example
///
/// ```
/// use dmig_graph::builder::complete_multigraph;
/// use dmig_color::greedy::greedy_coloring;
///
/// let g = complete_multigraph(4, 1);
/// let coloring = greedy_coloring(&g);
/// coloring.validate_proper(&g).unwrap();
/// assert!(coloring.num_colors() as usize <= 2 * g.max_degree() - 1);
/// ```
#[must_use]
pub fn greedy_coloring(g: &Multigraph) -> EdgeColoring {
    assert!(
        !g.has_loops(),
        "proper edge coloring requires a loop-free graph"
    );
    let mut coloring = EdgeColoring::uncolored(g.num_edges());
    // used[v] tracks which colors appear at v, as a growable bitset of u64s.
    let mut used: Vec<Vec<u64>> = vec![Vec::new(); g.num_nodes()];

    let is_used =
        |bits: &[u64], c: usize| bits.get(c / 64).is_some_and(|w| w & (1 << (c % 64)) != 0);
    fn mark(bits: &mut Vec<u64>, c: usize) {
        let word = c / 64;
        if bits.len() <= word {
            bits.resize(word + 1, 0);
        }
        bits[word] |= 1 << (c % 64);
    }

    for (e, ep) in g.edges() {
        let mut c = 0usize;
        while is_used(&used[ep.u.index()], c) || is_used(&used[ep.v.index()], c) {
            c += 1;
        }
        coloring.set(e, u32::try_from(c).expect("color id overflow"));
        mark(&mut used[ep.u.index()], c);
        mark(&mut used[ep.v.index()], c);
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{complete_multigraph, cycle_multigraph, star_multigraph};
    use dmig_graph::Multigraph;

    #[test]
    fn empty_graph_zero_colors() {
        let g = Multigraph::with_nodes(3);
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors(), 0);
        assert!(c.validate_proper(&g).is_ok());
    }

    #[test]
    fn star_uses_exactly_degree() {
        let g = star_multigraph(6, 1);
        let c = greedy_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors(), 6);
    }

    #[test]
    fn parallel_edges_all_distinct() {
        let g = dmig_graph::GraphBuilder::new()
            .parallel_edges(0, 1, 5)
            .build();
        let c = greedy_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors(), 5);
    }

    #[test]
    fn bound_holds_on_dense_graphs() {
        for (n, m) in [(4, 2), (5, 3), (7, 1)] {
            let g = complete_multigraph(n, m);
            let c = greedy_coloring(&g);
            c.validate_proper(&g).unwrap();
            assert!((c.num_colors() as usize) < 2 * g.max_degree());
        }
    }

    #[test]
    fn cycles_within_three_colors() {
        for n in [3usize, 4, 5, 8, 9] {
            let g = cycle_multigraph(n, 1);
            let c = greedy_coloring(&g);
            c.validate_proper(&g).unwrap();
            assert!(c.num_colors() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "loop-free")]
    fn loops_rejected() {
        let mut g = Multigraph::with_nodes(1);
        g.add_edge(0.into(), 0.into());
        let _ = greedy_coloring(&g);
    }
}
