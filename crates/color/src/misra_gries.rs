//! Misra–Gries edge coloring: Vizing's `Δ + 1` bound for simple graphs.
//!
//! Phase 2 of the paper's general algorithm (§V-C3) colors the sparse
//! simple residue graph `G_0` with "Vizing's algorithm" after splitting
//! nodes into `c_v` copies; this module supplies that algorithm. It is the
//! classical Misra–Gries (1992) procedure: maximal fans, `cd`-path
//! inversions, and fan rotations, always within `Δ + 1` colors.

use dmig_graph::{EdgeId, Multigraph, NodeId};

use crate::EdgeColoring;

/// Colors a **simple** graph with at most `Δ + 1` colors (Vizing's bound)
/// using the Misra–Gries constructive procedure.
///
/// # Panics
///
/// Panics if `g` has parallel edges or self-loops. Use
/// [`crate::kempe::kempe_coloring`] for multigraphs.
///
/// # Example
///
/// ```
/// use dmig_graph::builder::complete_multigraph;
/// use dmig_color::misra_gries::misra_gries_coloring;
///
/// let g = complete_multigraph(5, 1); // K5: Δ = 4, χ' = 5
/// let coloring = misra_gries_coloring(&g);
/// coloring.validate_proper(&g).unwrap();
/// assert!(coloring.num_colors() <= 5);
/// ```
#[must_use]
pub fn misra_gries_coloring(g: &Multigraph) -> EdgeColoring {
    assert!(g.is_simple(), "misra-gries requires a simple graph");
    let n = g.num_nodes();
    let delta = g.max_degree();
    let q = delta + 1;
    let mut state = State {
        g,
        coloring: EdgeColoring::uncolored(g.num_edges()),
        at: vec![vec![None; q]; n],
        q,
    };

    for (e, ep) in g.edges() {
        state.color_edge(e, ep.u, ep.v);
    }

    debug_assert!(state.coloring.is_complete());
    state.coloring.compact();
    state.coloring
}

struct State<'a> {
    g: &'a Multigraph,
    coloring: EdgeColoring,
    /// `at[v][c]` = the edge of color `c` incident to `v`, if any.
    at: Vec<Vec<Option<EdgeId>>>,
    q: usize,
}

impl State<'_> {
    fn free_color(&self, v: NodeId) -> usize {
        (0..self.q)
            .find(|&c| self.at[v.index()][c].is_none())
            .expect("a vertex of degree <= Δ always misses one of Δ+1 colors")
    }

    fn is_free(&self, v: NodeId, c: usize) -> bool {
        self.at[v.index()][c].is_none()
    }

    fn assign(&mut self, e: EdgeId, c: usize) {
        let ep = self.g.endpoints(e);
        debug_assert!(self.is_free(ep.u, c) && self.is_free(ep.v, c));
        self.at[ep.u.index()][c] = Some(e);
        self.at[ep.v.index()][c] = Some(e);
        self.coloring
            .set(e, u32::try_from(c).expect("color id overflow"));
    }

    fn unassign(&mut self, e: EdgeId) -> usize {
        let c = self.coloring.color(e).expect("unassign of uncolored edge") as usize;
        let ep = self.g.endpoints(e);
        self.at[ep.u.index()][c] = None;
        self.at[ep.v.index()][c] = None;
        self.coloring.clear(e);
        c
    }

    /// Builds a maximal fan of `u` whose first spoke is the uncolored edge
    /// to `v`. Returns the fan as (neighbor, spoke edge) pairs; the first
    /// spoke is `e`.
    fn maximal_fan(&self, u: NodeId, v: NodeId) -> Vec<(NodeId, EdgeId)> {
        let mut fan: Vec<(NodeId, EdgeId)> = Vec::new();
        let e0 = self
            .g
            .incident_edges(u)
            .iter()
            .copied()
            .find(|&e| self.coloring.color(e).is_none() && self.g.endpoints(e).contains(v))
            .expect("uncolored edge (u,v) must exist");
        fan.push((v, e0));
        let mut in_fan = vec![false; self.g.num_nodes()];
        in_fan[v.index()] = true;
        loop {
            let last = fan.last().expect("fan non-empty").0;
            let next = self.g.incident_edges(u).iter().copied().find(|&e| {
                let w = self.g.endpoints(e).other(u);
                if w == u || in_fan[w.index()] {
                    return false;
                }
                match self.coloring.color(e) {
                    Some(c) => self.is_free(last, c as usize),
                    None => false,
                }
            });
            match next {
                Some(e) => {
                    let w = self.g.endpoints(e).other(u);
                    in_fan[w.index()] = true;
                    fan.push((w, e));
                }
                None => return fan,
            }
        }
    }

    /// Inverts the `cd`-path starting at `u` (`c` free at `u`): edges
    /// alternate `d, c, d, …`; after inversion `d` is free at `u` (if the
    /// path was non-empty).
    fn invert_cd_path(&mut self, u: NodeId, c: usize, d: usize) {
        let mut path = Vec::new();
        let mut cur = u;
        let mut want = d;
        while let Some(e) = self.at[cur.index()][want] {
            path.push(e);
            cur = self.g.endpoints(e).other(cur);
            want = if want == d { c } else { d };
        }
        // Two-phase update: unassigning and reassigning one edge at a time
        // would clobber the entries of adjacent path edges at interior
        // vertices (both of a vertex's path edges swap colors "at once").
        let recolored: Vec<(EdgeId, usize)> = path
            .into_iter()
            .map(|e| {
                let old = self.unassign(e);
                (e, if old == c { d } else { c })
            })
            .collect();
        for (e, new) in recolored {
            self.assign(e, new);
        }
    }

    fn color_edge(&mut self, e: EdgeId, u: NodeId, v: NodeId) {
        debug_assert!(self.coloring.color(e).is_none());
        let fan = self.maximal_fan(u, v);
        let c = self.free_color(u);
        let l = fan.last().expect("fan non-empty").0;
        let d = self.free_color(l);
        if c != d {
            self.invert_cd_path(u, c, d);
        }
        // Find the shortest fan prefix [f0..fw] that is still a fan after
        // the inversion and whose tip is missing d; Misra–Gries guarantees
        // one exists.
        let mut w = None;
        for (i, &(f, _)) in fan.iter().enumerate() {
            if i > 0 {
                let spoke = fan[i].1;
                let prev = fan[i - 1].0;
                let col = match self.coloring.color(spoke) {
                    Some(col) => col as usize,
                    None => break, // inversion uncolored? cannot happen, but stay safe
                };
                if !self.is_free(prev, col) {
                    break; // fan property broken beyond here
                }
            }
            if self.is_free(f, d) {
                w = Some(i);
                break;
            }
        }
        let w = w.expect("misra-gries invariant: a rotatable fan prefix exists");

        // Rotate the prefix: each spoke takes the color of the next spoke.
        for i in 0..w {
            let next_color = self.unassign(fan[i + 1].1);
            if i == 0 {
                // f0's spoke is the uncolored edge e itself; just assign.
                debug_assert_eq!(fan[0].1, e);
                self.assign(e, next_color);
            } else {
                self.assign(fan[i].1, next_color);
            }
        }
        // Color the tip spoke with d.
        let tip_edge = fan[w].1;
        self.assign(tip_edge, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{
        complete_multigraph, cycle_multigraph, star_multigraph, GraphBuilder,
    };
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check(g: &Multigraph) {
        let coloring = misra_gries_coloring(g);
        coloring.validate_proper(g).unwrap();
        assert!(
            coloring.num_colors() as usize <= g.max_degree() + 1,
            "vizing bound violated: {} colors for Δ = {}",
            coloring.num_colors(),
            g.max_degree()
        );
    }

    #[test]
    fn empty_and_single_edge() {
        check(&Multigraph::with_nodes(4));
        check(&GraphBuilder::new().edge(0, 1).build());
    }

    #[test]
    fn complete_graphs() {
        for n in 2..9 {
            check(&complete_multigraph(n, 1));
        }
    }

    #[test]
    fn odd_cycles_need_three() {
        let g = cycle_multigraph(5, 1);
        let c = misra_gries_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn even_cycles_within_vizing() {
        // χ'(C6) = 2, but Misra–Gries only promises Δ + 1 = 3.
        let g = cycle_multigraph(6, 1);
        let c = misra_gries_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert!(c.num_colors() <= 3);
    }

    #[test]
    fn stars_need_exactly_degree() {
        let g = star_multigraph(7, 1);
        let c = misra_gries_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors(), 7);
    }

    #[test]
    fn petersen_graph() {
        // 3-regular, chromatic index 4 (class 2 graph).
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let g = GraphBuilder::new()
            .edges_from(outer.iter().copied())
            .edges_from(spokes.iter().copied())
            .edges_from(inner.iter().copied())
            .build();
        let c = misra_gries_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert!(c.num_colors() <= 4);
    }

    #[test]
    fn random_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let n = rng.gen_range(2..24);
            let mut g = Multigraph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.35) {
                        g.add_edge(u.into(), v.into());
                    }
                }
            }
            check(&g);
        }
    }

    #[test]
    #[should_panic(expected = "simple graph")]
    fn multigraph_rejected() {
        let g = GraphBuilder::new().parallel_edges(0, 1, 2).build();
        let _ = misra_gries_coloring(&g);
    }
}
