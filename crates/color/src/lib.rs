//! Edge-coloring substrate for heterogeneous data-migration scheduling.
//!
//! Scheduling migrations on homogeneous disks (one transfer per disk at a
//! time) *is* multigraph edge coloring: each color class is a matching that
//! runs as one round (Hall et al., SODA '01). The heterogeneous algorithms
//! of the ICDCS 2011 paper lean on the same machinery — Saia's
//! 1.5-approximation splits each disk into `c_v` copies and edge-colors the
//! split graph within Shannon's bound, and Phase 2 of the general algorithm
//! colors the sparse residue with Vizing's theorem (§V-C3).
//!
//! Provided colorers:
//!
//! * [`greedy::greedy_coloring`] — first-fit, `≤ 2Δ−1` colors; the baseline.
//! * [`misra_gries::misra_gries_coloring`] — Vizing `Δ+1` for **simple**
//!   graphs, used to color the residue graph `G_0`.
//! * [`kempe::kempe_coloring`] — Kempe-chain colorer for multigraphs with
//!   color-budget escalation; empirically lands at `Δ` or `Δ+μ`, well
//!   inside Shannon's `⌊3Δ/2⌋` envelope.
//! * [`bipartite::bipartite_coloring`] — exactly `Δ` colors on bipartite
//!   multigraphs (König), via regularization + repeated perfect matchings
//!   extracted with `dmig-flow`.
//!
//! All colorers produce an [`EdgeColoring`], which can be validated against
//! any graph with [`EdgeColoring::validate_proper`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod coloring;
pub mod greedy;
pub mod kempe;
pub mod misra_gries;

pub use coloring::{ColoringError, EdgeColoring};

/// Shannon's upper bound on the chromatic index of a multigraph with
/// maximum degree `max_degree`: `⌊3Δ/2⌋`.
///
/// # Example
///
/// ```
/// assert_eq!(dmig_color::shannon_bound(4), 6);
/// assert_eq!(dmig_color::shannon_bound(5), 7);
/// assert_eq!(dmig_color::shannon_bound(0), 0);
/// ```
#[must_use]
pub fn shannon_bound(max_degree: usize) -> usize {
    3 * max_degree / 2
}

/// Vizing's upper bound for multigraphs: `Δ + μ` where `μ` is the maximum
/// edge multiplicity.
///
/// # Example
///
/// ```
/// assert_eq!(dmig_color::vizing_bound(4, 2), 6);
/// ```
#[must_use]
pub fn vizing_bound(max_degree: usize, max_multiplicity: usize) -> usize {
    max_degree + max_multiplicity
}
