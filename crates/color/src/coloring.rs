//! Edge colorings and their validation.

use core::fmt;

use dmig_graph::{EdgeId, Multigraph, NodeId};

/// Errors detected when validating an [`EdgeColoring`] against a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColoringError {
    /// An edge has no color assigned.
    Uncolored {
        /// The uncolored edge.
        edge: EdgeId,
    },
    /// A color id is `>= num_colors`.
    ColorOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Its color.
        color: u32,
        /// Declared number of colors.
        num_colors: u32,
    },
    /// A node sees the same color on more edges than its allowance.
    CapacityExceeded {
        /// The overloaded node.
        node: NodeId,
        /// The over-used color.
        color: u32,
        /// How many incident edges carry that color.
        used: usize,
        /// The allowance (1 for proper colorings, `c_v` for capacitated).
        allowed: usize,
    },
    /// The coloring covers a different number of edges than the graph has.
    SizeMismatch {
        /// Edges in the coloring.
        coloring_edges: usize,
        /// Edges in the graph.
        graph_edges: usize,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Uncolored { edge } => write!(f, "edge {edge} is uncolored"),
            ColoringError::ColorOutOfRange {
                edge,
                color,
                num_colors,
            } => {
                write!(
                    f,
                    "edge {edge} has color {color} >= num_colors {num_colors}"
                )
            }
            ColoringError::CapacityExceeded {
                node,
                color,
                used,
                allowed,
            } => write!(
                f,
                "node {node} has {used} incident edges of color {color}, allowed {allowed}"
            ),
            ColoringError::SizeMismatch {
                coloring_edges,
                graph_edges,
            } => write!(
                f,
                "coloring covers {coloring_edges} edges but graph has {graph_edges}"
            ),
        }
    }
}

impl std::error::Error for ColoringError {}

/// A (possibly partial) assignment of colors to the edges of a multigraph.
///
/// Colors are dense ids `0..num_colors`. In migration terms each color is
/// one round of the schedule.
///
/// # Example
///
/// ```
/// use dmig_graph::GraphBuilder;
/// use dmig_color::EdgeColoring;
///
/// let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
/// let mut coloring = EdgeColoring::uncolored(g.num_edges());
/// coloring.set(0.into(), 0);
/// coloring.set(1.into(), 0);
/// // Improper: both edges of color 0 meet at node 1.
/// assert!(coloring.validate_proper(&g).is_err());
/// coloring.set(1.into(), 1);
/// assert!(coloring.validate_proper(&g).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<Option<u32>>,
    num_colors: u32,
}

impl EdgeColoring {
    /// Creates an all-uncolored assignment for `num_edges` edges.
    #[must_use]
    pub fn uncolored(num_edges: usize) -> Self {
        EdgeColoring {
            colors: vec![None; num_edges],
            num_colors: 0,
        }
    }

    /// Number of edges covered (colored or not).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.colors.len()
    }

    /// Number of colors in use (`max assigned color + 1`).
    #[inline]
    #[must_use]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// Color of edge `e`, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn color(&self, e: EdgeId) -> Option<u32> {
        self.colors[e.index()]
    }

    /// Assigns color `c` to edge `e`, growing `num_colors` if needed.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn set(&mut self, e: EdgeId, c: u32) {
        self.colors[e.index()] = Some(c);
        self.num_colors = self.num_colors.max(c + 1);
    }

    /// Removes the color of edge `e` (does not shrink `num_colors`).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn clear(&mut self, e: EdgeId) {
        self.colors[e.index()] = None;
    }

    /// Returns `true` if every edge has a color.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// Ids of edges that still lack a color.
    #[must_use]
    pub fn uncolored_edges(&self) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// Groups edge ids by color: `classes()[c]` is color class `c`.
    ///
    /// Uncolored edges are omitted.
    #[must_use]
    pub fn classes(&self) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.num_colors as usize];
        for (i, c) in self.colors.iter().enumerate() {
            if let Some(c) = c {
                out[*c as usize].push(EdgeId::new(i));
            }
        }
        out
    }

    /// Validates this coloring as a **proper** edge coloring of `g`: every
    /// edge colored, every color at most once per node (self-loops are
    /// always violations since they meet their node twice).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate_proper(&self, g: &Multigraph) -> Result<(), ColoringError> {
        let ones = vec![1usize; g.num_nodes()];
        self.validate_capacitated(g, &ones)
    }

    /// Validates this coloring as a **capacitated** edge coloring of `g`:
    /// every edge colored and, for every node `v` and color `c`, at most
    /// `caps[v]` incident edges of color `c` (self-loops count twice).
    ///
    /// This is exactly the feasibility condition for one color class to run
    /// as one migration round under transfer constraints `c_v`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    ///
    /// # Panics
    ///
    /// Panics if `caps.len() < g.num_nodes()`.
    pub fn validate_capacitated(
        &self,
        g: &Multigraph,
        caps: &[usize],
    ) -> Result<(), ColoringError> {
        assert!(
            caps.len() >= g.num_nodes(),
            "capacity slice shorter than node count"
        );
        if self.colors.len() != g.num_edges() {
            return Err(ColoringError::SizeMismatch {
                coloring_edges: self.colors.len(),
                graph_edges: g.num_edges(),
            });
        }
        for (e, _) in g.edges() {
            match self.color(e) {
                None => return Err(ColoringError::Uncolored { edge: e }),
                Some(c) if c >= self.num_colors => {
                    return Err(ColoringError::ColorOutOfRange {
                        edge: e,
                        color: c,
                        num_colors: self.num_colors,
                    })
                }
                Some(_) => {}
            }
        }
        // Count per (node, color) incidences.
        let n = g.num_nodes();
        let q = self.num_colors as usize;
        let mut used = vec![0usize; n * q];
        for (e, ep) in g.edges() {
            let c = self.color(e).expect("checked above") as usize;
            used[ep.u.index() * q + c] += 1;
            used[ep.v.index() * q + c] += 1; // loops counted twice, as required
        }
        for v in 0..n {
            for c in 0..q {
                let count = used[v * q + c];
                if count > caps[v] {
                    return Err(ColoringError::CapacityExceeded {
                        node: NodeId::new(v),
                        color: c as u32,
                        used: count,
                        allowed: caps[v],
                    });
                }
            }
        }
        Ok(())
    }

    /// Renumbers colors densely by first use, dropping empty color classes;
    /// returns the new number of colors.
    pub fn compact(&mut self) -> u32 {
        let mut remap: Vec<Option<u32>> = vec![None; self.num_colors as usize];
        let mut next = 0u32;
        for c in self.colors.iter_mut().flatten() {
            let slot = &mut remap[*c as usize];
            let new = *slot.get_or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            *c = new;
        }
        self.num_colors = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::GraphBuilder;

    #[test]
    fn uncolored_initial_state() {
        let c = EdgeColoring::uncolored(3);
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.num_colors(), 0);
        assert!(!c.is_complete());
        assert_eq!(c.uncolored_edges().len(), 3);
    }

    #[test]
    fn set_grows_color_count() {
        let mut c = EdgeColoring::uncolored(2);
        c.set(0.into(), 4);
        assert_eq!(c.num_colors(), 5);
        assert_eq!(c.color(0.into()), Some(4));
        c.clear(0.into());
        assert_eq!(c.color(0.into()), None);
        assert_eq!(c.num_colors(), 5, "clear does not shrink");
    }

    #[test]
    fn classes_group_by_color() {
        let mut c = EdgeColoring::uncolored(4);
        c.set(0.into(), 1);
        c.set(1.into(), 0);
        c.set(2.into(), 1);
        let classes = c.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![EdgeId::new(1)]);
        assert_eq!(classes[1], vec![EdgeId::new(0), EdgeId::new(2)]);
    }

    #[test]
    fn validate_detects_uncolored() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let c = EdgeColoring::uncolored(1);
        assert_eq!(
            c.validate_proper(&g),
            Err(ColoringError::Uncolored {
                edge: EdgeId::new(0)
            })
        );
    }

    #[test]
    fn validate_detects_size_mismatch() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let c = EdgeColoring::uncolored(2);
        assert!(matches!(
            c.validate_proper(&g),
            Err(ColoringError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn validate_detects_conflicts() {
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
        let mut c = EdgeColoring::uncolored(2);
        c.set(0.into(), 0);
        c.set(1.into(), 0);
        let err = c.validate_proper(&g).unwrap_err();
        assert!(matches!(
            err,
            ColoringError::CapacityExceeded { node, color: 0, used: 2, allowed: 1 }
                if node == NodeId::new(1)
        ));
    }

    #[test]
    fn capacitated_allows_repeats_within_cap() {
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).edge(1, 3).build();
        let mut c = EdgeColoring::uncolored(3);
        c.set(0.into(), 0);
        c.set(1.into(), 0);
        c.set(2.into(), 0);
        // Node 1 sees color 0 three times; fine with cap 3, not with 2.
        assert!(c.validate_capacitated(&g, &[1, 3, 1, 1]).is_ok());
        assert!(c.validate_capacitated(&g, &[1, 2, 1, 1]).is_err());
    }

    #[test]
    fn self_loop_counts_twice_in_validation() {
        let mut g = GraphBuilder::new().nodes(1).build();
        let e = g.add_edge(0.into(), 0.into());
        let mut c = EdgeColoring::uncolored(1);
        c.set(e, 0);
        assert!(c.validate_proper(&g).is_err());
        assert!(c.validate_capacitated(&g, &[2]).is_ok());
        assert!(c.validate_capacitated(&g, &[1]).is_err());
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut c = EdgeColoring::uncolored(3);
        c.set(0.into(), 7);
        c.set(1.into(), 2);
        c.set(2.into(), 7);
        assert_eq!(c.compact(), 2);
        assert_eq!(c.color(0.into()), Some(0));
        assert_eq!(c.color(1.into()), Some(1));
        assert_eq!(c.color(2.into()), Some(0));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn error_messages_are_lowercase() {
        let e = ColoringError::Uncolored {
            edge: EdgeId::new(3),
        };
        assert!(e.to_string().starts_with("edge"));
    }
}
