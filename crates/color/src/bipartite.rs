//! Optimal edge coloring of bipartite multigraphs (König's theorem).
//!
//! A bipartite multigraph has chromatic index exactly `Δ`. Constructively:
//! regularize the graph (equal sides, every degree exactly `Δ` after adding
//! dummy edges), then peel off `Δ` perfect matchings, each extracted as an
//! exact degree-constrained subgraph with `dmig-flow` (all quotas 1). A
//! perfect matching always exists in a `Δ`-regular bipartite multigraph by
//! Hall's theorem, so each peel succeeds.
//!
//! In migration terms this is the optimal scheduler for *reconfiguration*
//! workloads, whose transfer graphs (old layout → new layout) are bipartite.

use dmig_flow::exact_degree_subgraph;
use dmig_graph::{bipartite::bipartition, EdgeId, GraphError, Multigraph};

use crate::EdgeColoring;

/// Colors a bipartite multigraph with exactly `Δ` colors.
///
/// # Errors
///
/// Returns [`GraphError::NotBipartite`] if `g` is not bipartite.
///
/// # Example
///
/// ```
/// use dmig_graph::GraphBuilder;
/// use dmig_color::bipartite::bipartite_coloring;
///
/// let g = GraphBuilder::new()
///     .parallel_edges(0, 2, 2)
///     .edge(0, 3)
///     .edge(1, 2)
///     .build();
/// let coloring = bipartite_coloring(&g)?;
/// coloring.validate_proper(&g).unwrap();
/// assert_eq!(coloring.num_colors() as usize, g.max_degree()); // König
/// # Ok::<(), dmig_graph::GraphError>(())
/// ```
pub fn bipartite_coloring(g: &Multigraph) -> Result<EdgeColoring, GraphError> {
    let sides = bipartition(g)?;
    let delta = g.max_degree();
    let mut coloring = EdgeColoring::uncolored(g.num_edges());
    if delta == 0 {
        return Ok(coloring);
    }

    // Map graph nodes to per-side dense indices.
    let n = g.num_nodes();
    let mut side_index = vec![usize::MAX; n];
    let mut left = Vec::new();
    let mut right = Vec::new();
    for v in g.nodes() {
        if sides.is_left(v) {
            side_index[v.index()] = left.len();
            left.push(v);
        } else {
            side_index[v.index()] = right.len();
            right.push(v);
        }
    }
    let s = left.len().max(right.len());

    // Regularize: `arcs` lists left-index → right-index pairs; entry i of
    // `origin` remembers which original edge (if any) the arc represents.
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    let mut origin: Vec<Option<EdgeId>> = Vec::new();
    let mut left_deg = vec![0usize; s];
    let mut right_deg = vec![0usize; s];
    for (e, ep) in g.edges() {
        let (l, r) = if sides.is_left(ep.u) {
            (side_index[ep.u.index()], side_index[ep.v.index()])
        } else {
            (side_index[ep.v.index()], side_index[ep.u.index()])
        };
        arcs.push((l, r));
        origin.push(Some(e));
        left_deg[l] += 1;
        right_deg[r] += 1;
    }
    // Pad with dummy arcs until both sides are Δ-regular. Total deficits
    // match: Σ(Δ - left_deg) = sΔ - m = Σ(Δ - right_deg).
    let mut l_cursor = 0usize;
    let mut r_cursor = 0usize;
    loop {
        while l_cursor < s && left_deg[l_cursor] >= delta {
            l_cursor += 1;
        }
        while r_cursor < s && right_deg[r_cursor] >= delta {
            r_cursor += 1;
        }
        if l_cursor == s || r_cursor == s {
            break;
        }
        arcs.push((l_cursor, r_cursor));
        origin.push(None);
        left_deg[l_cursor] += 1;
        right_deg[r_cursor] += 1;
    }
    debug_assert!(left_deg.iter().all(|&d| d == delta));
    debug_assert!(right_deg.iter().all(|&d| d == delta));

    // Peel Δ perfect matchings. Node layout for the flow step: left nodes
    // are 0..s, right nodes s..2s.
    let mut alive: Vec<usize> = (0..arcs.len()).collect();
    for color in 0..delta {
        let current: Vec<(usize, usize)> =
            alive.iter().map(|&i| (arcs[i].0, arcs[i].1 + s)).collect();
        let mut out_quota = vec![0u32; 2 * s];
        let mut in_quota = vec![0u32; 2 * s];
        for q in out_quota.iter_mut().take(s) {
            *q = 1;
        }
        for q in in_quota.iter_mut().skip(s) {
            *q = 1;
        }
        let selection = exact_degree_subgraph(2 * s, &current, &out_quota, &in_quota)
            .expect("a Δ-regular bipartite multigraph has a perfect matching");
        let mut rest = Vec::with_capacity(alive.len() - s);
        for (pos, &arc_idx) in alive.iter().enumerate() {
            if selection[pos] {
                if let Some(e) = origin[arc_idx] {
                    coloring.set(e, u32::try_from(color).expect("color id overflow"));
                }
            } else {
                rest.push(arc_idx);
            }
        }
        alive = rest;
    }
    debug_assert!(alive.is_empty());
    debug_assert!(coloring.is_complete());
    coloring.compact();
    Ok(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{cycle_multigraph, GraphBuilder};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_koenig(g: &Multigraph) {
        let c = bipartite_coloring(g).unwrap();
        c.validate_proper(g).unwrap();
        assert_eq!(c.num_colors() as usize, g.max_degree(), "König: χ' = Δ");
    }

    #[test]
    fn empty_graph() {
        let g = Multigraph::with_nodes(4);
        let c = bipartite_coloring(&g).unwrap();
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    fn single_and_parallel_edges() {
        check_koenig(&GraphBuilder::new().edge(0, 1).build());
        check_koenig(&GraphBuilder::new().parallel_edges(0, 1, 5).build());
    }

    #[test]
    fn even_cycles() {
        for n in [4usize, 6, 8] {
            check_koenig(&cycle_multigraph(n, 1));
            check_koenig(&cycle_multigraph(n, 3));
        }
    }

    #[test]
    fn complete_bipartite() {
        // K_{3,4}: Δ = 4.
        let mut b = GraphBuilder::new();
        for l in 0..3 {
            for r in 3..7 {
                b = b.edge(l, r);
            }
        }
        check_koenig(&b.build());
    }

    #[test]
    fn unbalanced_sides_and_multiplicities() {
        let g = GraphBuilder::new()
            .parallel_edges(0, 5, 4)
            .parallel_edges(1, 5, 2)
            .edge(2, 5)
            .edge(0, 6)
            .build();
        check_koenig(&g);
    }

    #[test]
    fn non_bipartite_rejected() {
        let g = cycle_multigraph(5, 1);
        assert!(bipartite_coloring(&g).is_err());
    }

    #[test]
    fn random_bipartite_multigraphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let m = rng.gen_range(0..40);
            let mut g = Multigraph::with_nodes(nl + nr);
            for _ in 0..m {
                let l = rng.gen_range(0..nl);
                let r = nl + rng.gen_range(0..nr);
                g.add_edge(l.into(), r.into());
            }
            if g.num_edges() == 0 {
                continue;
            }
            check_koenig(&g);
        }
    }

    #[test]
    fn disconnected_components() {
        let g = GraphBuilder::new()
            .parallel_edges(0, 1, 3)
            .parallel_edges(2, 3, 2)
            .nodes(6)
            .build();
        check_koenig(&g);
    }
}
