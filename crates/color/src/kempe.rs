//! Kempe-chain edge coloring for multigraphs with budget escalation.
//!
//! Saia's 1.5-approximation for heterogeneous migration (the baseline of
//! the ICDCS 2011 paper, §I–II) edge-colors a split multigraph within
//! Shannon's `⌊3Δ/2⌋` bound. This colorer maintains a growing color budget
//! starting at `Δ`: each edge is colored with a mutually free color when
//! possible, otherwise by flipping an alternating *Kempe chain* to free a
//! color, and only when every `(a, b)` flip fails does the budget grow.
//! In a proper partial coloring the subgraph of any two colors is a union
//! of paths and even cycles, so a chain flip is always feasibility-
//! preserving; escalation is therefore rare, and the result empirically
//! sits at `Δ` or `Δ + μ`, far inside Shannon's envelope (verified by the
//! tests here and monitored by experiment E5).

use dmig_graph::{EdgeId, Multigraph, NodeId};

use crate::EdgeColoring;

/// Statistics from a [`kempe_coloring`] run, useful for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KempeStats {
    /// Edges colored directly with a mutually free color.
    pub direct: usize,
    /// Edges colored after a successful chain flip.
    pub flips: usize,
    /// Times the color budget had to grow.
    pub escalations: usize,
}

/// Colors a loop-free multigraph properly, starting from a budget of `Δ`
/// colors and escalating only when no Kempe-chain flip helps.
///
/// Returns the coloring and run statistics. The number of colors used is
/// reported by [`EdgeColoring::num_colors`]; callers needing a bound should
/// compare against [`crate::shannon_bound`] / [`crate::vizing_bound`].
///
/// # Panics
///
/// Panics if `g` contains self-loops.
///
/// # Example
///
/// ```
/// use dmig_graph::builder::complete_multigraph;
/// use dmig_color::{kempe::kempe_coloring, shannon_bound};
///
/// let g = complete_multigraph(3, 4); // Fig. 2 family, Δ = 8, χ' = 12
/// let (coloring, _stats) = kempe_coloring(&g);
/// coloring.validate_proper(&g).unwrap();
/// assert!(coloring.num_colors() as usize <= shannon_bound(g.max_degree()));
/// ```
#[must_use]
pub fn kempe_coloring(g: &Multigraph) -> (EdgeColoring, KempeStats) {
    assert!(
        !g.has_loops(),
        "proper edge coloring requires a loop-free graph"
    );
    let n = g.num_nodes();
    let mut q = g.max_degree().max(1);
    if g.num_edges() == 0 {
        return (EdgeColoring::uncolored(0), KempeStats::default());
    }

    let mut at: Vec<Vec<Option<EdgeId>>> = vec![vec![None; q]; n];
    let mut coloring = EdgeColoring::uncolored(g.num_edges());
    let mut stats = KempeStats::default();

    for (e, ep) in g.edges() {
        let (u, v) = (ep.u, ep.v);
        // 1. Mutually free color.
        if let Some(c) = (0..q).find(|&c| at[u.index()][c].is_none() && at[v.index()][c].is_none())
        {
            assign(&mut at, &mut coloring, g, e, c);
            stats.direct += 1;
            continue;
        }
        // 2. Kempe flips: a free at u, b free at v; flip the ab-chain from
        // v. If the chain does not reach u, a becomes free at v too.
        let free_u: Vec<usize> = (0..q).filter(|&c| at[u.index()][c].is_none()).collect();
        let free_v: Vec<usize> = (0..q).filter(|&c| at[v.index()][c].is_none()).collect();
        let mut done = false;
        'pairs: for &a in &free_u {
            for &b in &free_v {
                if a == b {
                    continue; // handled by step 1
                }
                // Chain from v: first edge colored a (v misses b, not a).
                // If it avoids u, flipping frees a at v and e takes a.
                if chain_end(g, &at, v, a, b) != u {
                    flip_chain(g, &mut at, &mut coloring, v, a, b);
                    debug_assert!(at[v.index()][a].is_none());
                    assign(&mut at, &mut coloring, g, e, a);
                    stats.flips += 1;
                    done = true;
                    break 'pairs;
                }
                // Symmetric attempt from u: flip the ba-chain to free b at
                // u and color e with b.
                if chain_end(g, &at, u, b, a) != v {
                    flip_chain(g, &mut at, &mut coloring, u, b, a);
                    debug_assert!(at[u.index()][b].is_none());
                    assign(&mut at, &mut coloring, g, e, b);
                    stats.flips += 1;
                    done = true;
                    break 'pairs;
                }
            }
        }
        if done {
            continue;
        }
        // 3. Escalate: new color, trivially free everywhere.
        for row in &mut at {
            row.push(None);
        }
        let c = q;
        q += 1;
        stats.escalations += 1;
        assign(&mut at, &mut coloring, g, e, c);
    }

    debug_assert!(coloring.is_complete());
    coloring.compact();
    (coloring, stats)
}

fn assign(
    at: &mut [Vec<Option<EdgeId>>],
    coloring: &mut EdgeColoring,
    g: &Multigraph,
    e: EdgeId,
    c: usize,
) {
    let ep = g.endpoints(e);
    debug_assert!(at[ep.u.index()][c].is_none() && at[ep.v.index()][c].is_none());
    at[ep.u.index()][c] = Some(e);
    at[ep.v.index()][c] = Some(e);
    coloring.set(e, u32::try_from(c).expect("color id overflow"));
}

/// Follows the alternating `a, b, a, …` chain starting at `start` and
/// returns the vertex where it ends (possibly `start` if no `a`-edge).
fn chain_end(
    g: &Multigraph,
    at: &[Vec<Option<EdgeId>>],
    start: NodeId,
    a: usize,
    b: usize,
) -> NodeId {
    let mut cur = start;
    let mut want = a;
    loop {
        match at[cur.index()][want] {
            Some(e) => {
                cur = g.endpoints(e).other(cur);
                want = if want == a { b } else { a };
            }
            None => return cur,
        }
    }
}

/// Swaps colors `a ↔ b` along the chain starting at `start`.
fn flip_chain(
    g: &Multigraph,
    at: &mut [Vec<Option<EdgeId>>],
    coloring: &mut EdgeColoring,
    start: NodeId,
    a: usize,
    b: usize,
) {
    // Collect first (flipping while walking would corrupt the lookups).
    let mut chain = Vec::new();
    let mut cur = start;
    let mut want = a;
    while let Some(e) = at[cur.index()][want] {
        chain.push(e);
        cur = g.endpoints(e).other(cur);
        want = if want == a { b } else { a };
    }
    // Two-phase update: clearing and writing interleaved per edge would
    // clobber the entries of neighboring chain edges at interior vertices.
    let recolored: Vec<(EdgeId, usize)> = chain
        .iter()
        .map(|&e| {
            let old = coloring.color(e).expect("chain edges are colored") as usize;
            let ep = g.endpoints(e);
            at[ep.u.index()][old] = None;
            at[ep.v.index()][old] = None;
            (e, if old == a { b } else { a })
        })
        .collect();
    for (e, new) in recolored {
        let ep = g.endpoints(e);
        debug_assert!(at[ep.u.index()][new].is_none() && at[ep.v.index()][new].is_none());
        at[ep.u.index()][new] = Some(e);
        at[ep.v.index()][new] = Some(e);
        coloring.set(e, u32::try_from(new).expect("color id overflow"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shannon_bound, vizing_bound};
    use dmig_graph::builder::{
        complete_multigraph, cycle_multigraph, star_multigraph, GraphBuilder,
    };
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_within_shannon(g: &Multigraph) -> u32 {
        let (coloring, _) = kempe_coloring(g);
        coloring.validate_proper(g).unwrap();
        assert!(
            coloring.num_colors() as usize <= shannon_bound(g.max_degree()),
            "{} colors exceeds shannon bound {} (Δ = {})",
            coloring.num_colors(),
            shannon_bound(g.max_degree()),
            g.max_degree()
        );
        coloring.num_colors()
    }

    #[test]
    fn empty_graph() {
        let (c, stats) = kempe_coloring(&Multigraph::with_nodes(2));
        assert_eq!(c.num_colors(), 0);
        assert_eq!(stats, KempeStats::default());
    }

    #[test]
    fn parallel_pair_uses_multiplicity_colors() {
        let g = GraphBuilder::new().parallel_edges(0, 1, 6).build();
        let used = check_within_shannon(&g);
        assert_eq!(used, 6);
    }

    #[test]
    fn fig2_triangle_family() {
        // K3 with M parallel edges: Δ = 2M, χ' = 3M = Shannon bound exactly.
        for m in [1usize, 2, 3, 5, 8] {
            let g = complete_multigraph(3, m);
            let used = check_within_shannon(&g);
            assert!(used as usize >= 3 * m, "χ' of K3^m is exactly 3m");
            assert_eq!(used as usize, 3 * m);
        }
    }

    #[test]
    fn simple_graphs_near_vizing() {
        // Chain flips alone do not certify Vizing's Δ+1 (that needs fans,
        // see `misra_gries`), but on small complete graphs they should stay
        // within one extra color of it — and always inside Shannon.
        for n in 3..9 {
            let g = complete_multigraph(n, 1);
            let (c, _) = kempe_coloring(&g);
            c.validate_proper(&g).unwrap();
            assert!(c.num_colors() as usize <= vizing_bound(g.max_degree(), 1) + 1);
            assert!(c.num_colors() as usize <= shannon_bound(g.max_degree()).max(3));
        }
    }

    #[test]
    fn odd_cycle_within_three() {
        let g = cycle_multigraph(7, 1);
        let used = check_within_shannon(&g);
        assert_eq!(used, 3);
    }

    #[test]
    fn star_exactly_degree() {
        let g = star_multigraph(9, 2);
        let (c, _) = kempe_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors(), 18);
    }

    #[test]
    fn random_multigraphs_within_shannon() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(2..16);
            let m = rng.gen_range(0..60);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            check_within_shannon(&g);
        }
    }

    #[test]
    fn random_multigraphs_usually_near_delta() {
        // Quality check: across a corpus, the average excess over Δ should
        // be well below the Shannon slack.
        let mut rng = StdRng::seed_from_u64(1234);
        let mut total_excess = 0usize;
        let mut cases = 0usize;
        for _ in 0..30 {
            let n = rng.gen_range(4..12);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..40 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            let (c, _) = kempe_coloring(&g);
            c.validate_proper(&g).unwrap();
            total_excess += (c.num_colors() as usize).saturating_sub(g.max_degree());
            cases += 1;
        }
        // Allow a generous average excess of 2 colors.
        assert!(
            total_excess <= 2 * cases,
            "average excess too high: {total_excess}/{cases}"
        );
    }

    #[test]
    fn stats_account_for_all_edges() {
        let g = complete_multigraph(4, 3);
        let (c, stats) = kempe_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(
            stats.direct + stats.flips + stats.escalations,
            g.num_edges()
        );
    }

    #[test]
    #[should_panic(expected = "loop-free")]
    fn loops_rejected() {
        let mut g = Multigraph::with_nodes(1);
        g.add_edge(0.into(), 0.into());
        let _ = kempe_coloring(&g);
    }
}
