//! Structured-family tests for the colorers: families with known
//! chromatic indices pin exact behavior, not just bounds.

use dmig_color::{
    bipartite::bipartite_coloring, greedy::greedy_coloring, kempe::kempe_coloring,
    misra_gries::misra_gries_coloring, shannon_bound,
};
use dmig_graph::builder::{complete_multigraph, cycle_multigraph};
use dmig_graph::{GraphBuilder, Multigraph, NodeId};

/// `K_{a,b}` complete bipartite.
fn complete_bipartite(a: usize, b: usize) -> Multigraph {
    let mut g = Multigraph::with_nodes(a + b);
    for l in 0..a {
        for r in 0..b {
            g.add_edge(NodeId::new(l), NodeId::new(a + r));
        }
    }
    g
}

/// The d-dimensional hypercube (2^d nodes, d-regular, bipartite).
fn hypercube(d: usize) -> Multigraph {
    let n = 1usize << d;
    let mut g = Multigraph::with_nodes(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                g.add_edge(NodeId::new(v), NodeId::new(w));
            }
        }
    }
    g
}

#[test]
fn complete_bipartite_is_class_one() {
    // χ'(K_{a,b}) = max(a, b).
    for (a, b) in [(2usize, 3usize), (3, 3), (4, 7), (5, 5)] {
        let g = complete_bipartite(a, b);
        let c = bipartite_coloring(&g).unwrap();
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors() as usize, a.max(b), "K_{{{a},{b}}}");
    }
}

#[test]
fn hypercubes_color_with_dimension() {
    for d in 1..6 {
        let g = hypercube(d);
        let c = bipartite_coloring(&g).unwrap();
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors() as usize, d, "Q_{d}");
    }
}

#[test]
fn complete_graphs_parity() {
    // χ'(K_n) = n−1 for even n, n for odd n. Misra–Gries promises Δ+1,
    // so it must match exactly on odd n and be within one on even n.
    for n in 3..10 {
        let g = complete_multigraph(n, 1);
        let c = misra_gries_coloring(&g);
        c.validate_proper(&g).unwrap();
        let chromatic = if n % 2 == 0 { n - 1 } else { n };
        assert!(
            (c.num_colors() as usize) >= chromatic,
            "cannot beat χ'(K{n}) = {chromatic}"
        );
        assert!((c.num_colors() as usize) <= n, "Δ+1 = {n}");
    }
}

#[test]
fn shannon_tight_family() {
    // The "fat triangle": K3 with multiplicities (m, m, m) has
    // χ' = 3m = ⌊3Δ/2⌋ with Δ = 2m — Shannon's bound is tight here.
    for m in [1usize, 2, 4, 7] {
        let g = complete_multigraph(3, m);
        let (c, _) = kempe_coloring(&g);
        c.validate_proper(&g).unwrap();
        assert_eq!(c.num_colors() as usize, 3 * m);
        assert_eq!(shannon_bound(g.max_degree()), 3 * m);
    }
}

#[test]
fn uneven_fat_triangle() {
    // Multiplicities (a, b, c) pairwise: χ' = max(Δ, a+b+c) for triangle
    // multigraphs (folklore: every pair of bundles conflicts).
    let (a, b, c) = (4usize, 2usize, 1usize);
    let g = GraphBuilder::new()
        .parallel_edges(0, 1, a)
        .parallel_edges(1, 2, b)
        .parallel_edges(0, 2, c)
        .build();
    let (coloring, _) = kempe_coloring(&g);
    coloring.validate_proper(&g).unwrap();
    let lower = (a + b + c).max(g.max_degree());
    assert!(coloring.num_colors() as usize >= lower);
    assert!(
        coloring.num_colors() as usize <= lower + 1,
        "near-exact on fat triangles"
    );
}

#[test]
fn long_even_paths_two_colors_via_koenig() {
    let g = dmig_graph::builder::path_multigraph(20, 1);
    let c = bipartite_coloring(&g).unwrap();
    c.validate_proper(&g).unwrap();
    assert_eq!(c.num_colors(), 2);
}

#[test]
fn greedy_on_cycles_never_exceeds_three() {
    for n in 3..12 {
        for m in [1usize, 2] {
            let g = cycle_multigraph(n, m);
            let c = greedy_coloring(&g);
            c.validate_proper(&g).unwrap();
            assert!(c.num_colors() as usize <= 3 * m);
        }
    }
}

#[test]
fn kempe_stats_reflect_difficulty() {
    // On a bipartite-ish easy graph, escalations should be zero.
    let g = complete_bipartite(6, 6);
    let (c, stats) = kempe_coloring(&g);
    c.validate_proper(&g).unwrap();
    assert_eq!(stats.escalations, 0, "class-1 family should not escalate");
}
