//! Property-based tests for the edge-coloring substrate.

use dmig_color::{
    bipartite::bipartite_coloring, greedy::greedy_coloring, kempe::kempe_coloring,
    misra_gries::misra_gries_coloring, shannon_bound,
};
use dmig_graph::{Multigraph, NodeId};
use proptest::prelude::*;

fn arb_multigraph() -> impl Strategy<Value = Multigraph> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n - 1), 0..40).prop_map(move |edges| {
            let mut g = Multigraph::with_nodes(n);
            for (u, v) in edges {
                let v = if v >= u { v + 1 } else { v };
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
            g
        })
    })
}

fn arb_simple_graph() -> impl Strategy<Value = Multigraph> {
    (
        2usize..12,
        proptest::collection::vec(proptest::bool::ANY, 66),
    )
        .prop_map(|(n, bits)| {
            let mut g = Multigraph::with_nodes(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[idx % bits.len()] {
                        g.add_edge(NodeId::new(u), NodeId::new(v));
                    }
                    idx += 1;
                }
            }
            g
        })
}

fn arb_bipartite() -> impl Strategy<Value = Multigraph> {
    ((1usize..6), (1usize..6)).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec((0..nl, 0..nr), 0..30).prop_map(move |edges| {
            let mut g = Multigraph::with_nodes(nl + nr);
            for (l, r) in edges {
                g.add_edge(NodeId::new(l), NodeId::new(nl + r));
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Greedy is proper and within its 2Δ−1 bound.
    #[test]
    fn greedy_proper_and_bounded(g in arb_multigraph()) {
        let c = greedy_coloring(&g);
        prop_assert!(c.validate_proper(&g).is_ok());
        if g.num_edges() > 0 {
            prop_assert!((c.num_colors() as usize) < 2 * g.max_degree());
        }
    }

    /// Kempe is proper and within Shannon's bound.
    #[test]
    fn kempe_proper_within_shannon(g in arb_multigraph()) {
        let (c, stats) = kempe_coloring(&g);
        prop_assert!(c.validate_proper(&g).is_ok());
        prop_assert!((c.num_colors() as usize) <= shannon_bound(g.max_degree()).max(1));
        prop_assert_eq!(stats.direct + stats.flips + stats.escalations, g.num_edges());
    }

    /// Misra–Gries is proper and within Vizing's Δ+1 on simple graphs.
    #[test]
    fn misra_gries_within_vizing(g in arb_simple_graph()) {
        let c = misra_gries_coloring(&g);
        prop_assert!(c.validate_proper(&g).is_ok());
        if g.num_edges() > 0 {
            prop_assert!((c.num_colors() as usize) <= g.max_degree() + 1);
        }
    }

    /// König: bipartite multigraphs colored with exactly Δ colors.
    #[test]
    fn koenig_exact_on_bipartite(g in arb_bipartite()) {
        let c = bipartite_coloring(&g).expect("bipartite by construction");
        prop_assert!(c.validate_proper(&g).is_ok());
        prop_assert_eq!(c.num_colors() as usize, g.max_degree());
    }

    /// Color classes are matchings: each class touches a node at most once.
    #[test]
    fn classes_are_matchings(g in arb_multigraph()) {
        let (c, _) = kempe_coloring(&g);
        for class in c.classes() {
            let mut touched = vec![false; g.num_nodes()];
            for e in class {
                let ep = g.endpoints(e);
                prop_assert!(!touched[ep.u.index()] && !touched[ep.v.index()]);
                touched[ep.u.index()] = true;
                touched[ep.v.index()] = true;
            }
        }
    }

    /// `compact` preserves validity and never increases the color count.
    #[test]
    fn compact_preserves_validity(g in arb_multigraph()) {
        let (mut c, _) = kempe_coloring(&g);
        let before = c.num_colors();
        let after = c.compact();
        prop_assert!(after <= before);
        prop_assert!(c.validate_proper(&g).is_ok());
    }
}
