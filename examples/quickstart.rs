//! E1 / quickstart — plan a small heterogeneous migration end to end.
//!
//! Mirrors the paper's Fig. 1: a handful of disks with parallel transfer
//! edges between them (a multi-graph, since several items can move
//! between the same pair of disks), plus heterogeneous transfer
//! constraints. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dmig::graph::GraphBuilder;
use dmig::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Transfer graph in the spirit of the paper's Fig. 1: five disks,
    // multiple items between some pairs.
    let graph = GraphBuilder::new()
        .parallel_edges(0, 1, 2) // two items v0 -> v1
        .edge(0, 2)
        .parallel_edges(1, 2, 3)
        .edge(1, 3)
        .edge(2, 4)
        .parallel_edges(3, 4, 2)
        .build();

    // Heterogeneous transfer constraints: v1 is a new fast disk (4
    // concurrent transfers), v3 is old and busy (1), the rest medium.
    let capacities = Capacities::from_vec(vec![2, 4, 2, 1, 2]);
    let problem = MigrationProblem::new(graph, capacities)?;

    println!("{problem}");
    println!("LB1 (Δ') = {}", bounds::lb1(&problem));
    println!("LB2 (Γ') = {}", bounds::lb2(&problem));

    // AutoSolver picks the strongest applicable algorithm; here the mixed
    // parities and the odd cycle send it to the general solver (§V).
    let schedule = AutoSolver.solve(&problem)?;
    schedule.validate(&problem)?;
    println!("\nschedule: {} rounds", schedule.makespan());
    for (i, round) in schedule.rounds().iter().enumerate() {
        let moves: Vec<String> = round
            .iter()
            .map(|&e| {
                let ep = problem.graph().endpoints(e);
                format!("{} -> {}", ep.u, ep.v)
            })
            .collect();
        println!("  round {i}: {}", moves.join(", "));
    }

    // Wall-clock estimate in the paper's bandwidth-split model.
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let report = simulate_rounds(&problem, &schedule, &cluster)?;
    println!(
        "\nsimulated: {:.1} time units, mean utilization {:.0}%",
        report.total_time,
        report.mean_utilization() * 100.0
    );
    Ok(())
}
