//! Disk-addition rebuild — the paper's §I upgrade scenario.
//!
//! A search-engine cluster adds four disks; data rebalances from the 24
//! old disks onto the new ones. The transfer graph is bipartite
//! (old → new), so the capacitated König solver schedules it *optimally*
//! for any mix of transfer constraints. Run with:
//!
//! ```text
//! cargo run --example disk_upgrade
//! ```

use dmig::prelude::*;
use dmig::workloads::disk_ops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const OLD: usize = 24;
    const NEW: usize = 4;
    const ITEMS: usize = 600;

    let graph = disk_ops::disk_addition(OLD, NEW, ITEMS, 2026);
    // Old disks serve live traffic: 2 concurrent migrations each. New
    // disks are idle: 8 each.
    let caps: Vec<u32> = (0..OLD + NEW)
        .map(|v| if v < OLD { 2 } else { 8 })
        .collect();
    let problem = MigrationProblem::new(graph, Capacities::from_vec(caps))?;

    println!("{problem}");
    println!("lower bound: {} rounds", bounds::lower_bound(&problem));

    let optimal = BipartiteOptimalSolver.solve(&problem)?;
    optimal.validate(&problem)?;
    println!(
        "bipartite-optimal: {} rounds (provably optimal)",
        optimal.makespan()
    );

    // What the same rebuild costs with one-at-a-time scheduling.
    let homogeneous = HomogeneousSolver.solve(&problem)?;
    homogeneous.validate(&problem)?;
    println!(
        "homogeneous     : {} rounds ({}x longer)",
        homogeneous.makespan(),
        homogeneous.makespan() / optimal.makespan().max(1)
    );

    // New disks are also faster hardware.
    let bw: Vec<f64> = (0..OLD + NEW)
        .map(|v| if v < OLD { 1.0 } else { 4.0 })
        .collect();
    let cluster = Cluster::from_bandwidths(bw);
    let fast = simulate_rounds(&problem, &optimal, &cluster)?;
    let slow = simulate_rounds(&problem, &homogeneous, &cluster)?;
    println!(
        "wall-clock: optimal {:.0} vs homogeneous {:.0} time units ({:.2}x)",
        fast.total_time,
        slow.total_time,
        slow.total_time / fast.total_time
    );
    Ok(())
}
