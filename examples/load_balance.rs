//! Load-balancing reconfiguration — the paper's §I demand-shift scenario.
//!
//! Demand patterns changed; a new layout was computed; items whose
//! placement changed must migrate. Disks differ in how many concurrent
//! migrations they tolerate (a tiered fleet of old and new hardware).
//! Compares every solver head-to-head on the same delta. Run with:
//!
//! ```text
//! cargo run --example load_balance
//! ```

use dmig::prelude::*;
use dmig::workloads::{capacities, reconfigure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 32;
    const ITEMS: usize = 800;

    let graph = reconfigure::load_balance_delta(DISKS, ITEMS, 7);
    let caps = capacities::tiered(DISKS, 6, 2, 0.25, 7);
    let problem = MigrationProblem::new(graph, caps)?;

    println!("{problem}");
    let lb = bounds::lower_bound(&problem);
    println!("lower bound: {lb} rounds\n");
    println!("{:<20} {:>8} {:>9}", "solver", "rounds", "vs LB");

    for solver in all_solvers() {
        match solver.solve(&problem) {
            Ok(schedule) => {
                schedule.validate(&problem)?;
                println!(
                    "{:<20} {:>8} {:>8.3}x",
                    solver.name(),
                    schedule.makespan(),
                    schedule.makespan() as f64 / lb as f64
                );
            }
            Err(err) => println!("{:<20} {:>8} ({err})", solver.name(), "-"),
        }
    }
    Ok(())
}
