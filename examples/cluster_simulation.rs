//! Cluster simulation deep-dive: round-barrier vs work-conserving
//! execution of the same schedule on heterogeneous hardware.
//!
//! The paper's model charges each round its slowest transfer; a real
//! controller would re-split bandwidth the moment a transfer finishes.
//! This example quantifies the difference on a skewed workload. Run with:
//!
//! ```text
//! cargo run --example cluster_simulation
//! ```

use dmig::prelude::*;
use dmig::workloads::{capacities, random};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 24;
    const ITEMS: usize = 500;

    // Popularity-skewed transfers over a mixed-generation fleet, with
    // variable item sizes (0.5–2.0) so completions stagger inside rounds.
    let graph = random::power_law_multigraph(DISKS, ITEMS, 1.1, 11);
    let caps = capacities::mixed_parity(DISKS, 1, 6, 11);
    let sizes: Vec<f64> = (0..ITEMS)
        .map(|i| 0.5 + 1.5 * ((i * 37) % 100) as f64 / 100.0)
        .collect();
    let problem = MigrationProblem::new(graph, caps)?;
    let schedule = AutoSolver.solve(&problem)?;
    schedule.validate(&problem)?;
    println!("{problem}");
    println!(
        "schedule: {} rounds (lower bound {})\n",
        schedule.makespan(),
        bounds::lower_bound(&problem)
    );

    // Three hardware mixes: uniform, mildly skewed, strongly skewed.
    for (label, bw) in [
        ("uniform 1x", vec![1.0; DISKS]),
        (
            "mild skew",
            (0..DISKS)
                .map(|v| if v % 4 == 0 { 2.0 } else { 1.0 })
                .collect(),
        ),
        (
            "strong skew",
            (0..DISKS)
                .map(|v| if v % 4 == 0 { 4.0 } else { 0.5 })
                .collect(),
        ),
    ] {
        let cluster = Cluster::from_bandwidths(bw).with_item_sizes(sizes.clone());
        let fixed = simulate_rounds(&problem, &schedule, &cluster)?;
        let adaptive = simulate_adaptive(&problem, &schedule, &cluster)?;
        println!(
            "{label:<12} barrier {:>8.1}  work-conserving {:>8.1}  savings {:>5.1}%  util {:>4.0}%",
            fixed.total_time,
            adaptive.total_time,
            100.0 * (1.0 - adaptive.total_time / fixed.total_time),
            adaptive.mean_utilization() * 100.0
        );
    }
    Ok(())
}
