//! Online replanning — new transfers arrive while a migration runs.
//!
//! A rebalance is mid-flight when demand shifts again: after each executed
//! round a few new items arrive and the controller replans the remainder.
//! Already-executed rounds are never revisited; item identity is preserved
//! through the replan mapping. Run with:
//!
//! ```text
//! cargo run --example online_replanning
//! ```

use dmig::core::replan::{replan, ItemOrigin};
use dmig::graph::Endpoints;
use dmig::prelude::*;
use dmig::workloads::{capacities, reconfigure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 12;

    let mut problem = MigrationProblem::new(
        reconfigure::load_balance_delta(DISKS, 120, 5),
        capacities::mixed_parity(DISKS, 2, 4, 5),
    )?;
    let mut schedule = AutoSolver.solve(&problem)?;
    println!(
        "initial plan: {} items in {} rounds",
        problem.num_items(),
        schedule.makespan()
    );

    // A trickle of new transfers lands after each executed round.
    let mut arrival_batches: Vec<Vec<Endpoints>> = (0..4u64)
        .map(|seed| {
            reconfigure::partial_rebalance(DISKS, 30, 0.3, 100 + seed)
                .edges()
                .map(|(_, ep)| ep)
                .collect()
        })
        .collect();

    let mut executed_total = 0usize;
    let mut step = 0usize;
    while schedule.makespan() > 0 {
        // Execute one round "for real".
        let executed = 1.min(schedule.makespan());
        executed_total += schedule.rounds()[..executed]
            .iter()
            .map(Vec::len)
            .sum::<usize>();

        let news = arrival_batches.pop().unwrap_or_default();
        let outcome = replan(&problem, &schedule, executed, &news, &AutoSolver)?;
        let carried = outcome
            .origin
            .iter()
            .filter(|o| matches!(o, ItemOrigin::Original(_)))
            .count();
        step += 1;
        println!(
            "step {step}: executed {executed} round(s); {carried} carried over, {} new; \
             residual plan {} rounds",
            news.len(),
            outcome.schedule.makespan()
        );
        problem = outcome.problem;
        schedule = outcome.schedule;
    }
    println!("\nmigration complete after {step} replanning steps, {executed_total} items moved");
    Ok(())
}
