//! Online replanning — the executor's closed loop under live faults.
//!
//! A 12-disk rebalance (plus one cold spare) is mid-flight when the
//! cluster starts misbehaving: one disk's bandwidth collapses to 30% and
//! later recovers, and another disk crash-stops outright. The fault plan
//! below is exactly what `dmig simulate --faults FILE --replan` consumes;
//! the executor retries, detects the stall, and re-solves the residual
//! problem — redirecting the dead disk's pending items to the spare — so
//! nothing is lost. Run with:
//!
//! ```text
//! cargo run --example online_replanning
//! ```

use dmig::prelude::*;
use dmig::workloads::{capacities, reconfigure};

/// The same TOML a `--faults` file would hold. Disk 3 degrades at t=2 and
/// recovers at t=8; disk 5 dies for good at t=4, replaced by the spare 12.
const FAULTS: &str = "\
seed = 42

[[degrade]]
disk = 3
time = 2.0
factor = 0.3
recover_at = 8.0

[[crash]]
disk = 5
time = 4.0
replacement = 12

[flaky]
probability = 0.02
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 12;

    // Rebuild the rebalance delta with one extra node: the cold spare.
    let delta = reconfigure::load_balance_delta(DISKS, 120, 5);
    let graph = GraphBuilder::new()
        .nodes(DISKS + 1)
        .edges_from(delta.edges().map(|(_, ep)| (ep.u.index(), ep.v.index())))
        .build();
    let problem = MigrationProblem::new(graph, capacities::mixed_parity(DISKS + 1, 2, 4, 5))?;
    let schedule = AutoSolver.solve(&problem)?;
    println!(
        "initial plan: {} items in {} rounds",
        problem.num_items(),
        schedule.makespan()
    );

    let faults = FaultPlan::parse(FAULTS)?;
    faults.validate(problem.num_disks())?;
    let cluster = Cluster::uniform(DISKS + 1, 1.0);

    // Without replanning the crash strands every item still routed
    // through disk 5.
    let blind = execute(
        &problem,
        &schedule,
        &cluster,
        &faults,
        &ExecutorConfig::default(),
        &AutoSolver,
    )?;
    println!(
        "open loop  : {} delivered, {} lost ({} on the dead disk)",
        blind.delivered(),
        blind.lost(),
        blind.lost_because(LostReason::DeadDisk),
    );

    // Closed loop: replan on crash/stall, retry flaky transfers.
    let config = ExecutorConfig {
        replan: true,
        retry_max: 3,
        ..ExecutorConfig::default()
    };
    let healed = execute(&problem, &schedule, &cluster, &faults, &config, &AutoSolver)?;
    println!(
        "closed loop: {} delivered ({} redirected to the spare), {} lost",
        healed.delivered(),
        healed.redirected(),
        healed.lost(),
    );
    println!(
        "recovery   : {} replans, {} retries, {} degraded rounds, finished at t={:.2}",
        healed.replans, healed.retries, healed.degraded_rounds, healed.sim.total_time,
    );
    assert_eq!(healed.lost(), 0, "the spare absorbs everything");
    Ok(())
}
