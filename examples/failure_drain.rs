//! Failure drain with a slow survivor — the paper's §I bottleneck story,
//! finished by the fault-tolerant executor.
//!
//! Two disks are being evacuated onto 14 survivors, one of which is an
//! old, busy disk with a quarter of the bandwidth and room for only one
//! migration at a time. A capacity-aware plan routes around it; the
//! homogeneous plan lets it pace the whole drain. Then the old disk does
//! what old disks do — it dies mid-drain — and the executor redirects its
//! pending items to a healthy survivor while retrying flaky transfers.
//! Run with:
//!
//! ```text
//! cargo run --example failure_drain
//! ```

use dmig::prelude::*;
use dmig::workloads::disk_ops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 16;
    const FAILED: usize = 2;
    const ITEMS: usize = 280;

    let graph = disk_ops::disk_removal(DISKS, FAILED, ITEMS, 99);
    let mut caps = vec![4u32; DISKS];
    caps[0] = 8; // draining disks push hard
    caps[1] = 8;
    caps[2] = 1; // the slow survivor
    let problem = MigrationProblem::new(graph, Capacities::from_vec(caps))?;

    println!("{problem}");
    println!("lower bound: {} rounds", bounds::lower_bound(&problem));

    let aware = GeneralSolver::default().solve(&problem)?;
    let naive = HomogeneousSolver.solve(&problem)?;
    aware.validate(&problem)?;
    naive.validate(&problem)?;
    println!("capacity-aware : {} rounds", aware.makespan());
    println!("homogeneous    : {} rounds", naive.makespan());

    let mut bw = vec![1.0f64; DISKS];
    bw[2] = 0.25;
    let cluster = Cluster::from_bandwidths(bw);
    let fast = simulate_rounds(&problem, &aware, &cluster)?;
    let slow = simulate_rounds(&problem, &naive, &cluster)?;
    println!(
        "wall-clock     : {:.0} vs {:.0} time units — {:.2}x faster recovery",
        fast.total_time,
        slow.total_time,
        slow.total_time / fast.total_time
    );
    println!(
        "slow survivor busy time: {:.0} (aware) vs {:.0} (homogeneous)",
        fast.disk_busy[2], slow.disk_busy[2]
    );

    // Act two: halfway through the fault-free drain the slow survivor
    // crash-stops. Its pending items are redirected to survivor 3, and a
    // 5% flaky-transfer rate exercises the retry/backoff path.
    let faults = FaultPlan::parse(&format!(
        "seed = 99\n\n\
         [[crash]]\ndisk = 2\ntime = {:.3}\nreplacement = 3\n\n\
         [flaky]\nprobability = 0.05\n",
        fast.total_time / 2.0
    ))?;
    faults.validate(problem.num_disks())?;
    let config = ExecutorConfig {
        replan: true,
        retry_max: 4,
        ..ExecutorConfig::default()
    };
    let report = execute(
        &problem,
        &aware,
        &cluster,
        &faults,
        &config,
        &GeneralSolver::default(),
    )?;
    println!(
        "\nwith a mid-drain crash of the slow survivor (+5% flaky links):\n\
         {} delivered ({} redirected), {} lost; {} replans, {} retries, \
         done at t={:.0}",
        report.delivered(),
        report.redirected(),
        report.lost(),
        report.replans,
        report.retries,
        report.sim.total_time,
    );
    assert_eq!(report.lost(), 0, "every item survives the drain");
    Ok(())
}
