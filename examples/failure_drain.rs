//! Failure drain with a slow survivor — the paper's §I bottleneck story.
//!
//! Two disks are being evacuated onto 14 survivors, one of which is an
//! old, busy disk that can take only one migration at a time (and has a
//! quarter of the bandwidth). A capacity-aware plan routes around it; the
//! homogeneous plan lets it pace the whole drain. Run with:
//!
//! ```text
//! cargo run --example failure_drain
//! ```

use dmig::prelude::*;
use dmig::workloads::disk_ops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DISKS: usize = 16;
    const FAILED: usize = 2;
    const ITEMS: usize = 280;

    let graph = disk_ops::disk_removal(DISKS, FAILED, ITEMS, 99);
    let mut caps = vec![4u32; DISKS];
    caps[0] = 8; // draining disks push hard
    caps[1] = 8;
    caps[2] = 1; // the slow survivor
    let problem = MigrationProblem::new(graph, Capacities::from_vec(caps))?;

    println!("{problem}");
    println!("lower bound: {} rounds", bounds::lower_bound(&problem));

    let aware = GeneralSolver::default().solve(&problem)?;
    let naive = HomogeneousSolver.solve(&problem)?;
    aware.validate(&problem)?;
    naive.validate(&problem)?;
    println!("capacity-aware : {} rounds", aware.makespan());
    println!("homogeneous    : {} rounds", naive.makespan());

    let mut bw = vec![1.0f64; DISKS];
    bw[2] = 0.25;
    let cluster = Cluster::from_bandwidths(bw);
    let fast = simulate_rounds(&problem, &aware, &cluster)?;
    let slow = simulate_rounds(&problem, &naive, &cluster)?;
    println!(
        "wall-clock     : {:.0} vs {:.0} time units — {:.2}x faster recovery",
        fast.total_time,
        slow.total_time,
        slow.total_time / fast.total_time
    );

    // How hard did the slow survivor work?
    println!(
        "slow survivor busy time: {:.0} (aware) vs {:.0} (homogeneous)",
        fast.disk_busy[2], slow.disk_busy[2]
    );
    Ok(())
}
