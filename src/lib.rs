//! `dmig` — heterogeneous data-migration scheduling.
//!
//! A from-scratch Rust reproduction of *"Data Migration in Heterogeneous
//! Storage Systems"* (Chadi Kari, Yoo-Ah Kim, Alexander Russell —
//! ICDCS 2011). This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `dmig-graph` | transfer multigraphs, Euler circuits, bipartitions |
//! | [`flow`] | `dmig-flow` | Dinic max-flow, degree-constrained subgraphs, densest subgraph |
//! | [`color`] | `dmig-color` | greedy / Vizing / König / Kempe edge colorers |
//! | [`core`] | `dmig-core` | the paper's algorithms: lower bounds, even-capacity optimum, general solver, baselines |
//! | [`sim`] | `dmig-sim` | bandwidth-split cluster simulator |
//! | [`workloads`] | `dmig-workloads` | seeded instance generators |
//!
//! # Quickstart
//!
//! ```
//! use dmig::prelude::*;
//! use dmig::graph::builder::complete_multigraph;
//!
//! // The paper's Fig. 2: three disks, M items per pair, two transfers at
//! // a time per disk. The capacity-aware optimum is M rounds; ignoring
//! // heterogeneity costs 3M.
//! let m = 4;
//! let problem = MigrationProblem::uniform(complete_multigraph(3, m), 2)?;
//! let schedule = AutoSolver::default().solve(&problem)?;
//! schedule.validate(&problem)?;
//! assert_eq!(schedule.makespan(), m);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dmig_color as color;
pub use dmig_core as core;
pub use dmig_flow as flow;
pub use dmig_graph as graph;
pub use dmig_sim as sim;
pub use dmig_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use dmig_core::parallel::{
        default_threads, merge_component_schedules, solve_components, solve_split,
        split_components, ComponentPart, ParallelSolver,
    };
    pub use dmig_core::solver::{
        all_solvers, solver_by_name, AutoSolver, BipartiteOptimalSolver, EvenOptimalSolver,
        GeneralSolver, GreedySolver, HomogeneousSolver, SaiaSolver, Solver,
    };
    pub use dmig_core::{
        bounds, Capacities, MigrationProblem, MigrationSchedule, ProblemError, ScheduleError,
        SolveError,
    };
    pub use dmig_graph::{EdgeId, GraphBuilder, Multigraph, NodeId};
    pub use dmig_sim::{
        engine::{simulate_adaptive, simulate_rounds},
        execute, Cluster, ExecReport, ExecutorConfig, FaultPlan, ItemFate, LostReason, SimReport,
    };
}
